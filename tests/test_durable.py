"""The durability plane: backends, recovery, restart, churn fixes."""

import pickle

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import (
    CorruptValueError,
    ReproError,
    UnknownDurabilityError,
)
from repro.common.rng import derive_seed, make_rng
from repro.dht.chord import ChordDht
from repro.dht.churn import generate_schedule, run_churn
from repro.dht.durable import (
    AppendLogBackend,
    FileDictBackend,
    backend_path,
    create_store_backend,
    register_store_backend,
    resolve_data_dir,
    store_backend_kinds,
    _BACKENDS,
)
from repro.dht.faults import FaultPlan, FaultyDht
from repro.dht.kademlia import KademliaDht
from repro.dht.localhash import LocalDht
from repro.dht.pastry import PastryDht
from repro.dht.retry import RetryingDht
from repro.dht.storage import EncodedValue, PeerStore
from repro.obs.trace import Tracer
from repro.runtime import RuntimeConfig, create_dht
from repro.service.wire import FrameDecoder


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


BACKEND_CLASSES = [AppendLogBackend, FileDictBackend]


@pytest.mark.parametrize("backend_cls", BACKEND_CLASSES)
class TestBackendRoundTrip:
    def test_put_remove_replay(self, backend_cls, tmp_path):
        backend = backend_cls(tmp_path / "peer")
        backend.record_put("a", b"alpha")
        backend.record_put("b", b"beta")
        backend.record_put("a", b"alpha-2")  # overwrite wins
        backend.record_remove("b")
        backend.close()
        fresh = backend_cls(tmp_path / "peer")
        assert fresh.replay() == {"a": b"alpha-2"}

    def test_replay_of_empty_backend(self, backend_cls, tmp_path):
        backend = backend_cls(tmp_path / "peer")
        assert backend.replay() == {}

    def test_closed_backend_rejects_writes(self, backend_cls, tmp_path):
        backend = backend_cls(tmp_path / "peer")
        backend.close()
        with pytest.raises(ReproError):
            backend.record_put("a", b"alpha")
        with pytest.raises(ReproError):
            backend.record_remove("a")

    def test_wipe_deletes_durable_state(self, backend_cls, tmp_path):
        backend = backend_cls(tmp_path / "peer")
        backend.record_put("a", b"alpha")
        backend.wipe()
        assert backend_cls(tmp_path / "peer").replay() == {}

    def test_compact_drops_dead_records(self, backend_cls, tmp_path):
        backend = backend_cls(tmp_path / "peer")
        for index in range(10):
            backend.record_put(f"k{index}", b"x" * index)
        backend.record_remove("k0")
        backend.compact([("k1", b"x"), ("k9", b"y")])
        backend.close()
        assert backend_cls(tmp_path / "peer").replay() == {
            "k1": b"x", "k9": b"y",
        }


class TestAppendLog:
    def test_log_is_a_plain_wire_frame_stream(self, tmp_path):
        """A durable log decodes with nothing beyond FrameDecoder —
        fed one byte at a time, every record still comes out."""
        backend = AppendLogBackend(tmp_path / "peer")
        backend.record_put("a", b"alpha")
        backend.record_put("b", b"b" * 200)
        backend.record_remove("a")
        backend.close()
        data = backend.path.read_bytes()
        decoder = FrameDecoder()
        frames = []
        for offset in range(len(data)):
            frames.extend(decoder.feed(data[offset:offset + 1]))
        assert [frame.body[0] for frame in frames] == ["a", "b", "a"]
        assert frames[1].body[1] == b"b" * 200

    @pytest.mark.parametrize("cut", [1, 7, 20])
    def test_torn_tail_recovers_to_intact_prefix(self, tmp_path, cut):
        backend = AppendLogBackend(tmp_path / "peer")
        backend.record_put("a", b"alpha")
        backend.record_put("b", b"beta")
        before_tail = backend.path.stat().st_size
        backend.record_put("c", b"gamma")
        backend.close()
        tail = backend.path.stat().st_size - before_tail
        assert 0 < cut < tail
        with open(backend.path, "ab") as handle:
            handle.truncate(backend.path.stat().st_size - cut)
        fresh = AppendLogBackend(tmp_path / "peer")
        assert fresh.replay() == {"a": b"alpha", "b": b"beta"}
        # The torn tail was compacted away: it cannot resurrect later,
        # and the log journals on cleanly.
        fresh.record_put("d", b"delta")
        fresh.close()
        assert AppendLogBackend(tmp_path / "peer").replay() == {
            "a": b"alpha", "b": b"beta", "d": b"delta",
        }

    def test_corrupt_middle_byte_truncates_there(self, tmp_path):
        backend = AppendLogBackend(tmp_path / "peer")
        backend.record_put("a", b"alpha")
        first = backend.path.stat().st_size
        backend.record_put("b", b"beta")
        backend.record_put("c", b"gamma")
        backend.close()
        data = bytearray(backend.path.read_bytes())
        data[first + 2] ^= 0xFF  # mangle the second record
        backend.path.write_bytes(bytes(data))
        assert AppendLogBackend(tmp_path / "peer").replay() == {
            "a": b"alpha"
        }

    def test_should_compact_tracks_journal_debt(self, tmp_path):
        backend = AppendLogBackend(tmp_path / "peer")
        for _ in range(65):
            backend.record_put("same", b"v")
        assert backend.should_compact(live_keys=1)
        backend.compact([("same", b"v")])
        assert not backend.should_compact(live_keys=1)


class TestFileDict:
    def test_torn_tmp_file_ignored_on_replay(self, tmp_path):
        backend = FileDictBackend(tmp_path / "peer")
        backend.record_put("a", b"alpha")
        (backend.path / "garbage.tmp").write_bytes(b"half-writ")
        assert backend.replay() == {"a": b"alpha"}
        assert not list(backend.path.glob("*.tmp"))

    def test_corrupt_entry_skipped(self, tmp_path):
        backend = FileDictBackend(tmp_path / "peer")
        backend.record_put("a", b"alpha")
        backend.record_put("b", b"beta")
        victim = backend._file_for("b")
        victim.write_bytes(b"\x00\x00\x00\x00corrupt")
        assert backend.replay() == {"a": b"alpha"}


class TestRegistry:
    def test_shipped_kinds(self):
        assert "log" in store_backend_kinds()
        assert "file" in store_backend_kinds()

    def test_unknown_kind_raises_typed_error(self, tmp_path):
        with pytest.raises(UnknownDurabilityError, match="carbonite"):
            create_store_backend("carbonite", tmp_path / "peer")

    def test_register_custom_backend(self, tmp_path):
        register_store_backend("custom-log", AppendLogBackend)
        try:
            backend = create_store_backend("custom-log", tmp_path / "p")
            assert isinstance(backend, AppendLogBackend)
            # The config surfaces validate against the live registry.
            RuntimeConfig(durability="custom-log")
            IndexConfig(durability="custom-log")
        finally:
            del _BACKENDS["custom-log"]

    def test_empty_kind_rejected(self):
        with pytest.raises(ReproError):
            register_store_backend("", AppendLogBackend)

    def test_resolve_data_dir_mints_unique_tmp_dirs(self):
        first = resolve_data_dir(None, "test")
        second = resolve_data_dir(None, "test")
        assert first != second
        assert first.is_dir() and second.is_dir()

    def test_resolve_data_dir_pins_explicit_dir(self, tmp_path):
        pinned = tmp_path / "nested" / "dir"
        assert resolve_data_dir(pinned, "test") == pinned
        assert pinned.is_dir()

    def test_substrates_never_share_a_default_data_dir(self):
        first = ChordDht.build(4, durability="log")
        second = ChordDht.build(4, durability="log")
        assert first.data_dir != second.data_dir


# ----------------------------------------------------------------------
# PeerStore journaling and recovery
# ----------------------------------------------------------------------


class TestPeerStoreDurability:
    def test_mutations_journal_and_recover(self, tmp_path):
        backend = AppendLogBackend(tmp_path / "peer")
        store = PeerStore(backend=backend)
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        store.remove("a")
        store.close_backend()
        recovered = PeerStore.recover(AppendLogBackend(tmp_path / "peer"))
        assert len(recovered) == 1
        assert recovered.get("b") == {"v": 2}

    def test_pop_range_journals_removals(self, tmp_path):
        backend = AppendLogBackend(tmp_path / "peer")
        store = PeerStore(backend=backend)
        store.put("a", 1)
        store.put("b", 2)
        store.pop_range(lambda digest: True)
        store.close_backend()
        recovered = PeerStore.recover(AppendLogBackend(tmp_path / "peer"))
        assert len(recovered) == 0

    def test_recover_replays_nothing_back_into_the_log(self, tmp_path):
        backend = AppendLogBackend(tmp_path / "peer")
        store = PeerStore(backend=backend)
        store.put("a", 1)
        store.close_backend()
        recovered = PeerStore.recover(AppendLogBackend(tmp_path / "peer"))
        assert recovered.backend._records == 1  # replay journaled nothing

    def test_encoded_store_recovers_blobs_without_decoding(self, tmp_path):
        backend = AppendLogBackend(tmp_path / "peer")
        store = PeerStore(encoded=True, backend=backend)
        store.put("a", {"v": 1})
        store.close_backend()
        recovered = PeerStore.recover(
            AppendLogBackend(tmp_path / "peer"), encoded=True
        )
        assert recovered._values["a"].data  # still a blob at rest
        assert recovered.get("a") == {"v": 1}

    def test_journal_debt_triggers_compaction(self, tmp_path):
        backend = AppendLogBackend(tmp_path / "peer")
        store = PeerStore(backend=backend)
        for round_no in range(70):
            store.put("hot", {"round": round_no})
        assert backend._records < 70  # compaction ran mid-stream
        store.close_backend()
        recovered = PeerStore.recover(AppendLogBackend(tmp_path / "peer"))
        assert recovered.get("hot") == {"round": 69}

    def test_wipe_backend_prevents_resurrection(self, tmp_path):
        backend = AppendLogBackend(tmp_path / "peer")
        store = PeerStore(backend=backend)
        store.put("a", 1)
        store.wipe_backend()
        recovered = PeerStore.recover(AppendLogBackend(tmp_path / "peer"))
        assert len(recovered) == 0

    def test_keys_never_decodes(self):
        store = PeerStore(encoded=True)
        store.put("a", {"v": 1})
        blob = store._values["a"]
        assert list(store.keys()) == ["a"]
        assert store._values["a"] is blob  # untouched EncodedValue

    def test_corrupt_blob_raises_typed_error(self):
        store = PeerStore()
        with pytest.raises(CorruptValueError):
            store.put("a", EncodedValue(b"not a pickle"))
        assert "a" not in store  # nothing stored, nothing journaled

    def test_corrupt_blob_error_is_repro_error(self):
        with pytest.raises(ReproError):
            EncodedValue(b"\x80garbage").decode()


# ----------------------------------------------------------------------
# Crash -> restart -> replay on every overlay
# ----------------------------------------------------------------------


OVERLAY_BUILDERS = [
    lambda d: ChordDht.build(8, durability=d, encoded_storage=True),
    lambda d: KademliaDht.build(8, durability=d, encoded_storage=True),
    lambda d: PastryDht.build(8, durability=d, encoded_storage=True),
]


@pytest.mark.parametrize(
    "build", OVERLAY_BUILDERS, ids=["chord", "kademlia", "pastry"]
)
@pytest.mark.parametrize("durability", ["log", "file"])
class TestRestartAllOverlays:
    def test_encoded_crash_restart_replay_round_trip(
        self, build, durability
    ):
        dht = build(durability)
        for index in range(60):
            dht.put(f"k{index}", {"v": index})
        victim = dht.peer_of("k0")
        dht.fail(victim)
        # Writes while the victim is down land on its neighbours...
        for index in range(60, 72):
            dht.put(f"k{index}", {"v": index})
        dht.restart(victim)
        # ...and every key, old and new, is readable afterwards.
        assert all(
            dht.get(f"k{index}") == {"v": index} for index in range(72)
        )
        stats = dht.stats
        assert stats.restarts == 1
        assert stats.restart_replayed > 0
        assert dht.key_count() == 72


class TestRestartProtocol:
    def test_restart_without_durability_raises(self):
        dht = ChordDht.build(4)
        dht.fail(dht.peers()[0])
        with pytest.raises(ReproError, match="durab"):
            dht.restart("chord-0000")

    def test_restart_of_live_peer_raises(self):
        dht = ChordDht.build(4, durability="log")
        with pytest.raises(ReproError, match="live"):
            dht.restart(dht.peers()[0])

    def test_restart_unsupported_on_local_oracle(self):
        dht = LocalDht(4, durability="log")
        with pytest.raises(ReproError, match="restart"):
            dht.restart(dht.peers()[0])

    def test_repair_traffic_tracks_ownership_churn_not_store_size(self):
        """Nothing written during the outage -> zero repair bytes,
        however many keys the store holds (the Theorem 5 analogue)."""
        dht = ChordDht.build(8, durability="log")
        for index in range(200):
            dht.put(f"k{index}", {"v": index})
        victim = dht.peer_of("k0")
        dht.fail(victim)
        dht.restart(victim)
        assert dht.stats.restart_replayed > 0
        assert dht.stats.restart_reconciled == 0
        assert dht.stats.restart_rehomed == 0
        assert dht.stats.restart_repair_bytes == 0
        assert all(
            dht.get(f"k{index}") == {"v": index} for index in range(200)
        )

    def test_rehome_when_ownership_moved_while_down(self):
        from repro.dht.hashing import node_id_from_name, ring_between

        dht = ChordDht.build(8, durability="log")
        for index in range(200):
            dht.put(f"k{index}", {"v": index})
        victim = dht.peer_of("k0")
        vnode = dht.node(victim)
        predecessor = vnode.predecessor.ident
        joiner = next(
            f"joiner-{attempt}"
            for attempt in range(100_000)
            if ring_between(
                node_id_from_name(f"joiner-{attempt}"),
                predecessor,
                vnode.ident,
            )
        )
        dht.fail(victim)
        dht.join(joiner)
        dht.stabilize_all(2)
        dht.restart(victim)
        assert dht.stats.restart_rehomed > 0
        assert dht.stats.restart_repair_bytes > 0
        assert all(
            dht.get(f"k{index}") == {"v": index} for index in range(200)
        )

    def test_restart_emits_a_span(self):
        dht = ChordDht.build(4, durability="log")
        dht.put("k", 1)
        victim = dht.peer_of("k")
        dht.fail(victim)
        dht.tracer = Tracer()
        dht.restart(victim)
        spans = [s for s in dht.tracer.spans if s.name == "restart"]
        assert len(spans) == 1
        assert spans[0].attrs["peer"] == victim

    def test_restart_across_substrate_instances(self, tmp_path):
        """A pinned data_dir makes durable state outlive the object
        that wrote it — the real process-crash shape."""
        first = ChordDht.build(4, durability="log", data_dir=tmp_path)
        for index in range(20):
            first.put(f"k{index}", index)
        holdings = {
            name: set(first.node(name).store.keys())
            for name in first.peers()
        }
        for name in first.peers():
            first.node(name).store.close_backend()
        second = ChordDht(durability="log", data_dir=tmp_path)
        # Rebuild the ring peer by peer from the logs alone.
        for name in holdings:
            second._nodes[name] = type(first.node(name))(
                name,
                second.network,
                store=PeerStore.recover(
                    create_store_backend(
                        "log", backend_path(tmp_path, name)
                    )
                ),
            )
        second.rewire()
        assert all(
            second.get(f"k{index}") == index for index in range(20)
        )

    def test_service_runtime_restart(self):
        dht = create_dht(RuntimeConfig(
            kind="asyncio", n_peers=3, durability="log"
        ))
        try:
            for index in range(12):
                dht.put(f"k{index}", {"v": index})
            victim = dht.peer_of("k0")
            dht.fail(victim)
            with pytest.raises(ReproError):
                dht.get("k0")
            dht.restart(victim)
            assert all(
                dht.get(f"k{index}") == {"v": index}
                for index in range(12)
            )
            assert dht.stats.restarts == 1
            assert dht.key_count() == 12
        finally:
            dht.close()

    def test_leave_then_restart_does_not_resurrect(self):
        """Graceful leave hands keys off and wipes the log; a later
        restart of that peer rejoins it empty — the wiped backend must
        not bring stale copies back."""
        dht = ChordDht.build(6, durability="log")
        for index in range(40):
            dht.put(f"k{index}", index)
        victim = dht.peer_of("k0")
        dht.leave(victim)
        dht.restart(victim)
        assert dht.stats.restart_replayed == 0
        assert dht.key_count() == 40
        assert all(dht.get(f"k{i}") == i for i in range(40))


# ----------------------------------------------------------------------
# Churn accounting fixes
# ----------------------------------------------------------------------


class TestChurnAccounting:
    def test_counting_never_decodes_encoded_values(self, monkeypatch):
        calls = {"decode": 0}
        original = EncodedValue.decode

        def counting_decode(self):
            calls["decode"] += 1
            return original(self)

        dht = ChordDht.build(8, encoded_storage=True)
        for index in range(40):
            dht.put(f"k{index}", {"v": index})
        monkeypatch.setattr(EncodedValue, "decode", counting_decode)
        report = run_churn(
            dht, 6, join_weight=1.0, leave_weight=1.0, fail_weight=1.0,
            seed=3,
        )
        assert report.keys_before == 40
        assert calls["decode"] == 0

    def test_key_count_default_matches_items(self):
        dht = LocalDht(8)
        for index in range(25):
            dht.put(f"k{index}", index)
        assert dht.key_count() == sum(1 for _ in dht.items()) == 25

    def test_key_count_counts_replica_copies_once(self):
        dht = ChordDht.build(6, replication=2)
        for index in range(30):
            dht.put(f"k{index}", index)
        assert dht.key_count() == 30

    def test_wrappers_delegate_key_count(self):
        inner = LocalDht(4)
        for index in range(10):
            inner.put(f"k{index}", index)
        assert RetryingDht(inner).key_count() == 10
        assert FaultyDht(inner, FaultPlan()).key_count() == 10

    def test_schedule_and_victim_streams_are_independent(self):
        """Regression: the victim stream used ``make_rng(seed + 1)``,
        colliding with the schedule stream of the adjacent seed."""
        assert derive_seed(0, "churn-victims") != derive_seed(
            1, "churn-schedule"
        )
        assert derive_seed(0, "churn-victims") != derive_seed(
            0, "churn-schedule"
        )
        victims = make_rng(derive_seed(0, "churn-victims"))
        old_style = make_rng(0 + 1)
        assert [victims.random() for _ in range(8)] != [
            old_style.random() for _ in range(8)
        ]

    def test_adjacent_seeds_draw_different_schedules(self):
        kinds = ("join", "leave", "fail")
        first = generate_schedule(64, 1, 1, 1, seed=0)
        second = generate_schedule(64, 1, 1, 1, seed=1)
        assert first != second
        assert set(first) <= set(kinds)

    def test_schedule_rejects_negative_restart_weight(self):
        with pytest.raises(ReproError, match="restart_weight"):
            generate_schedule(4, restart_weight=-1.0)

    def test_restart_arm_recovers_crash_victims(self):
        dht = ChordDht.build(10, durability="log")
        for index in range(60):
            dht.put(f"k{index}", {"v": index})
        report = run_churn(
            dht, 16,
            join_weight=0.0, leave_weight=0.0,
            fail_weight=1.0, restart_weight=1.0,
            min_peers=4, seed=0,
        )
        kinds = [event.kind for event in report.events]
        assert "fail" in kinds and "restart" in kinds
        restarted = {
            event.peer for event in report.events
            if event.kind == "restart"
        }
        failed = [
            event.peer for event in report.events if event.kind == "fail"
        ]
        # Restarts recover victims oldest-first.
        assert restarted <= set(failed)
        still_down = [peer for peer in failed if peer not in restarted]
        if not still_down:
            assert report.survival_ratio == 1.0
        # A peer can crash and come back more than once, so compare
        # against restart *events*, not distinct victims.
        n_restart_events = sum(1 for kind in kinds if kind == "restart")
        assert dht.stats.restarts == n_restart_events


# ----------------------------------------------------------------------
# Config surfaces
# ----------------------------------------------------------------------


class TestDurabilityConfig:
    def test_runtime_config_rejects_unknown_durability(self):
        with pytest.raises(UnknownDurabilityError):
            RuntimeConfig(durability="carbonite")

    def test_runtime_config_rejects_orphan_data_dir(self):
        with pytest.raises(ReproError, match="data_dir"):
            RuntimeConfig(data_dir="/tmp/somewhere")

    def test_index_config_rejects_unknown_durability(self):
        with pytest.raises(UnknownDurabilityError):
            IndexConfig(durability="carbonite")

    @pytest.mark.parametrize(
        "overlay", ["local", "chord", "kademlia", "pastry"]
    )
    def test_create_dht_threads_durability_to_sim_overlays(self, overlay):
        dht = create_dht(RuntimeConfig(
            kind="sim", overlay=overlay, n_peers=4, durability="file"
        ))
        assert dht.durability == "file"
        assert dht.data_dir is not None

    def test_durability_defaults_to_none(self):
        dht = create_dht(RuntimeConfig(kind="sim", n_peers=4))
        assert dht.durability is None
        assert dht.data_dir is None

    def test_build_index_threads_durability(self):
        from repro.experiments.harness import build_index

        index = build_index(
            "mlight", IndexConfig(durability="log"), n_peers=8
        )
        assert index.dht.durability == "log"
