"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.common.labels import root_label
from repro.runtime import RuntimeConfig, create_dht


# ----------------------------------------------------------------------
# Tree-shape oracles
# ----------------------------------------------------------------------

def random_tree_leaves(
    rng: random.Random,
    dims: int,
    max_depth: int,
    split_probability: float = 0.6,
) -> list[str]:
    """Generate the leaf set of a random space kd-tree.

    Starts from the ordinary root and recursively splits each node with
    *split_probability*, never deeper than *max_depth*.  The returned
    labels are prefix-free and tile the space — exactly the leaf sets
    the index produces.
    """
    leaves: list[str] = []
    stack = [root_label(dims)]
    while stack:
        label = stack.pop()
        depth = len(label) - dims - 1
        if depth < max_depth and rng.random() < split_probability:
            stack.append(label + "0")
            stack.append(label + "1")
        else:
            leaves.append(label)
    return leaves


def internal_nodes_of(leaves: list[str], dims: int) -> set[str]:
    """All internal labels of the tree with the given leaf set,
    including the virtual root."""
    internals = {"0" * dims}
    for leaf in leaves:
        for end in range(dims + 1, len(leaf)):
            internals.add(leaf[:end])
    return internals


def brute_force_range(points, query):
    """Reference answer for a closed range query over raw keys."""
    return sorted(p for p in points if query.contains_point_closed(p))


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------

def labels_strategy(dims: int, max_depth: int = 12):
    """Random valid non-virtual-root labels for *dims* dimensions."""
    return st.text(alphabet="01", min_size=0, max_size=max_depth).map(
        lambda bits: root_label(dims) + bits
    )


def points_strategy(dims: int):
    """Random data keys in [0, 1)^dims."""
    coordinate = st.floats(
        min_value=0.0,
        max_value=1.0,
        exclude_max=True,
        allow_nan=False,
        allow_infinity=False,
    )
    return st.tuples(*[coordinate] * dims)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def make_dht():
    """Factory for substrates routed through :func:`create_dht`.

    Accepts either a :class:`RuntimeConfig` or the same keyword
    overrides ``create_dht`` takes, and closes every runtime it built
    (service runtimes own threads and sockets) when the test ends.
    """
    built = []

    def factory(config: RuntimeConfig | None = None, **overrides):
        dht = create_dht(config, **overrides)
        built.append(dht)
        return dht

    yield factory
    for dht in built:
        close = getattr(dht, "close", None)
        if close is not None:
            close()
