"""Unit and property tests for regions and boundary semantics."""

import pytest
from hypothesis import given

from repro.common.errors import (
    InvalidLabelError,
    InvalidPointError,
    InvalidRegionError,
)
from repro.common.geometry import (
    Region,
    cell_resolves_query,
    check_point,
    clip,
    query_covers_cell,
    query_overlaps_cell,
    region_of_bits,
    region_of_label,
    unit_region,
)
from tests.conftest import labels_strategy, points_strategy


class TestRegionBasics:
    def test_unit_region(self):
        region = unit_region(2)
        assert region.lows == (0.0, 0.0)
        assert region.highs == (1.0, 1.0)
        assert region.volume() == 1.0

    def test_invalid_extent_rejected(self):
        with pytest.raises(InvalidRegionError):
            Region((0.5,), (0.4,))
        with pytest.raises(InvalidRegionError):
            Region((0.0, 0.0), (1.1, 1.0))
        with pytest.raises(InvalidRegionError):
            Region((), ())

    def test_arity_mismatch_rejected(self):
        with pytest.raises(InvalidRegionError):
            Region((0.0, 0.0), (1.0,))

    def test_split_halves_exactly(self):
        lower, upper = unit_region(2).split(0)
        assert lower.highs[0] == 0.5 == upper.lows[0]
        assert lower.volume() == upper.volume() == 0.5

    def test_center_and_side(self):
        region = Region((0.25, 0.0), (0.75, 0.5))
        assert region.center() == (0.5, 0.25)
        assert region.side(0) == 0.5

    def test_contains_region(self):
        outer = Region((0.0, 0.0), (0.5, 0.5))
        inner = Region((0.1, 0.1), (0.4, 0.4))
        assert outer.contains_region(inner)
        assert not inner.contains_region(outer)


class TestBoundarySemantics:
    """The half-open/closed rules every query algorithm relies on."""

    def test_cells_are_half_open(self):
        cell = Region((0.0, 0.0), (0.5, 0.5))
        assert cell.contains_point((0.0, 0.0))
        assert not cell.contains_point((0.5, 0.25))

    def test_queries_are_closed(self):
        query = Region((0.2, 0.2), (0.5, 0.5))
        assert query.contains_point_closed((0.5, 0.5))
        assert query.contains_point_closed((0.2, 0.2))

    def test_contains_point_rejects_wrong_arity(self):
        # Regression: the zip-based scan silently truncated, so a 1-D
        # point "matched" a 2-D region by checking only dimension 0.
        region = Region((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(InvalidPointError):
            region.contains_point((0.5,))
        with pytest.raises(InvalidPointError):
            region.contains_point((0.5, 0.5, 0.5))
        with pytest.raises(InvalidPointError):
            region.contains_point_closed((0.5,))
        with pytest.raises(InvalidPointError):
            region.contains_point_closed((0.5, 0.5, 0.5))

    def test_query_touching_cell_low_edge_overlaps(self):
        # A record exactly at the shared boundary lives in the upper
        # cell, and a closed query ending there still matches it.
        query = Region((0.3, 0.3), (0.5, 0.5))
        upper_cell = Region((0.5, 0.0), (1.0, 1.0))
        assert query_overlaps_cell(query, upper_cell)

    def test_query_starting_at_cell_high_edge_does_not_overlap(self):
        query = Region((0.5, 0.3), (0.7, 0.5))
        lower_cell = Region((0.0, 0.0), (0.5, 1.0))
        assert not query_overlaps_cell(query, lower_cell)

    def test_query_covers_cell(self):
        query = Region((0.0, 0.0), (0.5, 0.5))
        assert query_covers_cell(query, Region((0.0, 0.0), (0.5, 0.5)))
        assert query_covers_cell(query, Region((0.25, 0.25), (0.5, 0.5)))
        assert not query_covers_cell(query, Region((0.25, 0.25), (0.6, 0.5)))

    def test_cell_resolves_query_interior(self):
        cell = Region((0.0, 0.0), (0.5, 0.5))
        assert cell_resolves_query(cell, Region((0.1, 0.1), (0.4, 0.4)))

    def test_cell_does_not_resolve_query_touching_its_upper_face(self):
        # Matching records can sit exactly on the face, in the next cell.
        cell = Region((0.0, 0.0), (0.5, 0.5))
        assert not cell_resolves_query(cell, Region((0.1, 0.1), (0.5, 0.4)))

    def test_global_boundary_resolves(self):
        cell = Region((0.5, 0.5), (1.0, 1.0))
        assert cell_resolves_query(cell, Region((0.6, 0.6), (1.0, 1.0)))

    def test_clip_none_when_disjoint(self):
        assert clip(
            Region((0.6, 0.6), (0.8, 0.8)), Region((0.0, 0.0), (0.5, 0.5))
        ) is None

    def test_clip_intersection(self):
        clipped = clip(
            Region((0.2, 0.2), (0.8, 0.8)), Region((0.5, 0.0), (1.0, 0.6))
        )
        assert clipped == Region((0.5, 0.2), (0.8, 0.6))


class TestRegionOfLabel:
    def test_root_covers_space(self):
        assert region_of_label("001", 2) == unit_region(2)
        assert region_of_label("00", 2) == unit_region(2)

    def test_first_split_is_dimension_zero(self):
        assert region_of_label("0010", 2) == Region((0.0, 0.0), (0.5, 1.0))
        assert region_of_label("0011", 2) == Region((0.5, 0.0), (1.0, 1.0))

    def test_second_split_is_dimension_one(self):
        assert region_of_label("00101", 2) == Region((0.0, 0.5), (0.5, 1.0))

    def test_invalid_label_rejected(self):
        with pytest.raises(InvalidLabelError):
            region_of_label("10", 2)

    def test_region_of_bits_matches_label(self):
        assert region_of_bits("01", 2) == region_of_label("00101", 2)

    def test_region_of_bits_rejects_junk(self):
        with pytest.raises(InvalidLabelError):
            region_of_bits("0x", 2)

    @given(labels_strategy(2, 14))
    def test_volume_halves_per_level(self, label):
        region = region_of_label(label, 2)
        assert abs(region.volume() - 2.0 ** -(len(label) - 3)) < 1e-15

    @given(labels_strategy(2, 10), points_strategy(2))
    def test_point_in_exactly_one_child(self, label, point):
        region = region_of_label(label, 2)
        if not region.contains_point(point):
            return
        children = [
            region_of_label(label + bit, 2) for bit in "01"
        ]
        containing = [c for c in children if c.contains_point(point)]
        assert len(containing) == 1

    @given(points_strategy(3))
    def test_3d_descent_follows_interleaving(self, point):
        from repro.common.labels import candidate_string

        label = candidate_string(point, 9)
        assert region_of_label(label, 3).contains_point(point)


class TestCheckPoint:
    def test_valid(self):
        assert check_point([0.1, 0.9], 2) == (0.1, 0.9)

    def test_wrong_arity(self):
        with pytest.raises(InvalidPointError):
            check_point((0.1,), 2)

    def test_out_of_range(self):
        with pytest.raises(InvalidPointError):
            check_point((0.1, 1.0), 2)
