"""The documentation's code must actually run.

Extracts fenced ``python`` blocks from README.md and executes the
self-contained ones; spot-checks that docs/ refer only to names that
exist.
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def python_blocks(path: Path) -> list[str]:
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeSnippets:
    def test_quickstart_block_runs(self):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README lost its quickstart block"
        namespace: dict = {}
        exec(blocks[0], namespace)  # noqa: S102 - executing our own docs
        # The snippet built an index and ran queries; sanity-check it.
        assert "result" in namespace
        assert namespace["result"].records

    def test_install_commands_mentioned(self):
        text = (ROOT / "README.md").read_text()
        assert "pip install -e ." in text
        assert "pytest benchmarks/ --benchmark-only" in text


class TestUsageGuideNames:
    def test_referenced_symbols_exist(self):
        import repro
        from repro.core import aggregate
        from repro.dht import churn, retry
        from repro.metrics import CostMeter

        assert CostMeter is not None
        text = (ROOT / "docs" / "usage.md").read_text()
        for name in (
            "MLightIndex", "LocalDht", "ChordDht", "KademliaDht",
            "PastryDht", "Region", "bulk_load",
        ):
            assert name in text
            assert hasattr(repro, name), name
        assert hasattr(aggregate, "count_in")
        assert hasattr(aggregate, "sum_in")
        assert hasattr(retry, "RetryingDht")
        assert hasattr(churn, "run_churn")


class TestCrossReferences:
    def test_design_lists_every_experiment_bench(self):
        text = (ROOT / "DESIGN.md").read_text()
        for exp in ("E1", "E7", "A1", "A4", "E9", "E10", "E11"):
            assert f"| {exp} " in text, exp

    def test_experiments_has_verdict_per_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in ("Fig. 5a/5b", "Fig. 5c/5d", "Fig. 6a/6b",
                       "Fig. 7a", "Fig. 7b"):
            assert figure in text, figure
        assert text.count("reproduced") >= 6
