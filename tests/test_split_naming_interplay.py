"""Properties tying split plans to the naming function.

Applying a multi-level split plan relies on a telescoped form of
Theorem 5: of the plan's leaves, *exactly one* is named ``fmd(origin)``
(it stays under the dead bucket's key) and the rest map bijectively
onto the plan subtree's internal nodes.  The index would raise
``IndexCorruptionError`` if this ever failed; here we assert the
structure directly on randomly generated plans from both strategies.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.labels import root_label
from repro.core.naming import naming_function
from repro.core.records import Record
from repro.core.split import DataAwareSplit, ThresholdSplit
from tests.conftest import points_strategy


def plan_for(strategy, points, origin="001", dims=2, max_depth=10):
    records = [Record(point) for point in points]
    return strategy.plan_split(origin, records, dims, max_depth)


def subtree_internals(origin, leaf_labels):
    """Internal labels of the plan subtree (strictly between origin's
    children and the leaves, origin included)."""
    internals = set()
    for leaf in leaf_labels:
        for end in range(len(origin), len(leaf)):
            internals.add(leaf[:end])
    return internals


class TestSurvivorUniqueness:
    @given(st.lists(points_strategy(2), min_size=9, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_threshold_plans(self, points):
        plan = plan_for(ThresholdSplit(8, 4), points)
        if plan is None:
            return
        self._check(plan)

    @given(st.lists(points_strategy(2), min_size=9, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_data_aware_plans(self, points):
        plan = plan_for(DataAwareSplit(5), points)
        if plan is None:
            return
        self._check(plan)

    @staticmethod
    def _check(plan):
        dims = 2
        origin_name = naming_function(plan.origin, dims)
        names = [
            naming_function(label, dims) for label, _ in plan.leaves
        ]
        # Exactly one survivor keeps the origin's key...
        assert names.count(origin_name) == 1
        # ...all names distinct (local bijection)...
        assert len(set(names)) == len(names)
        # ...and the non-survivors map exactly onto the plan subtree's
        # internal nodes (origin included, per the telescoped Theorem 5).
        leaf_labels = [label for label, _ in plan.leaves]
        internals = subtree_internals(plan.origin, leaf_labels)
        others = set(names) - {origin_name}
        assert others <= internals
        assert len(others) == len(plan.leaves) - 1
        # The subtree has exactly len(leaves) - 1 internal nodes at or
        # below the origin, and every one of them receives a bucket.
        at_or_below = {
            label for label in internals
            if label.startswith(plan.origin)
        }
        assert others == at_or_below


class TestPlanGeometry:
    @pytest.mark.parametrize("seed", range(6))
    def test_leaves_partition_records_exactly(self, seed):
        rng = random.Random(seed)
        points = [(rng.random(), rng.random()) for _ in range(40)]
        plan = plan_for(ThresholdSplit(6, 3), points)
        if plan is None:
            return
        from repro.common.geometry import region_of_label

        for label, records in plan.leaves:
            region = region_of_label(label, 2)
            for record in records:
                assert region.contains_point(record.key)
        total = sum(len(records) for _, records in plan.leaves)
        assert total == len(points)

    @given(st.lists(points_strategy(3), min_size=9, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_3d_plans_survive_the_same_checks(self, points):
        strategy = ThresholdSplit(8, 4)
        records = [Record(point) for point in points]
        plan = strategy.plan_split(root_label(3), records, 3, 9)
        if plan is None:
            return
        names = [naming_function(label, 3) for label, _ in plan.leaves]
        origin_name = naming_function(plan.origin, 3)
        assert names.count(origin_name) == 1
        assert len(set(names)) == len(names)
