"""End-to-end test of the run_all CLI at miniature scale."""

import contextlib
import io

import pytest

from repro.experiments.run_all import main


@pytest.fixture(scope="module")
def cli_output(tmp_path_factory):
    csv_dir = tmp_path_factory.mktemp("csv")
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(
            [
                "--size", "400",
                "--queries", "2",
                "--charts",
                "--csv-dir", str(csv_dir),
            ]
        )
    return code, buffer.getvalue(), csv_dir


class TestRunAll:
    def test_exit_code(self, cli_output):
        code, _, _ = cli_output
        assert code == 0

    def test_every_section_present(self, cli_output):
        _, out, _ = cli_output
        for token in (
            "Figs. 5a/5b", "Figs. 5c/5d", "Figs. 6a/6b", "Figs. 7a/7b",
            "Ablation A1", "Ablation A2", "Ablation A3", "Ablation A4",
            "Extension E9", "Extension E10", "done in",
        ):
            assert token in out, token

    def test_charts_rendered(self, cli_output):
        _, out, _ = cli_output
        assert "log10" in out  # maintenance charts are log-scale
        assert "mlight-basic" in out

    def test_csv_files_written(self, cli_output):
        _, _, csv_dir = cli_output
        names = {path.name for path in csv_dir.iterdir()}
        assert "fig5_datasize_mlight.csv" in names
        assert "fig7_mlight-basic.csv" in names
        content = (csv_dir / "fig5_datasize_mlight.csv").read_text()
        assert content.startswith("data_size,lookups,records_moved")
