"""Tests for the DST baseline."""

import random

import pytest

from repro.common.config import IndexConfig
from repro.common.geometry import Region, region_of_bits
from repro.baselines.dst import DstIndex, _key
from repro.dht.localhash import LocalDht
from tests.conftest import brute_force_range


def small_config(**overrides):
    defaults = dict(
        dims=2, max_depth=10, split_threshold=8, merge_threshold=4
    )
    defaults.update(overrides)
    return IndexConfig(**defaults)


def make_index(saturation=None, **overrides):
    return DstIndex(LocalDht(16), small_config(**overrides), saturation)


class TestReplication:
    def test_record_stored_on_whole_path(self):
        index = make_index(saturation=100)
        index.insert((0.3, 0.7), "v")
        depth = index._depth
        stored_levels = sum(
            1
            for key, value in index.dht.items()
            if key.startswith("dst:") and value.records
        )
        assert stored_levels == depth + 1

    def test_insert_cost_scales_with_depth(self):
        index = make_index(saturation=100)
        before = index.dht.stats.lookups
        index.insert((0.3, 0.7))
        assert index.dht.stats.lookups - before >= index._depth + 1

    def test_saturation_caps_replication(self):
        index = make_index(saturation=3)
        rng = random.Random(0)
        for _ in range(50):
            index.insert((rng.random(), rng.random()))
        root = index.dht.peek(_key(""))
        assert root.saturated
        assert len(root.records) == 3
        assert index.total_records() == 50
        assert index.replica_count() < 50 * (index._depth + 1)

    def test_smaller_saturation_moves_less_data(self):
        """The Fig. 5d effect: early saturation cuts replication."""
        rng = random.Random(1)
        points = [(rng.random(), rng.random()) for _ in range(200)]
        small = make_index(saturation=2)
        large = make_index(saturation=200)
        for point in points:
            small.insert(point)
            large.insert(point)
        assert small.dht.stats.records_moved < large.dht.stats.records_moved


class TestDelete:
    def test_delete_removes_all_replicas(self):
        index = make_index(saturation=100)
        index.insert((0.3, 0.7), "v")
        assert index.delete((0.3, 0.7), "v")
        assert index.replica_count() == 0
        assert not index.delete((0.3, 0.7), "v")


class TestDecomposition:
    @pytest.mark.parametrize("seed", range(5))
    def test_canonical_cover_is_disjoint_and_exact(self, seed):
        rng = random.Random(seed)
        index = make_index()
        lows = (rng.random() * 0.7, rng.random() * 0.7)
        highs = (lows[0] + rng.random() * 0.3, lows[1] + rng.random() * 0.3)
        query = Region(lows, highs)
        out: list[str] = []
        index._decompose(query, "", region_of_bits("", 2), out)
        # Disjoint: no prefix relation between any two canonical cells.
        for a in out:
            for b in out:
                if a != b:
                    assert not b.startswith(a)
        # Exact: cells tile the query up to leaf resolution.
        from repro.common.geometry import clip

        total = 0.0
        for prefix in out:
            cell = region_of_bits(prefix, 2)
            piece = clip(query, cell)
            assert piece is not None
        # Every interior point of the query is covered by some cell.
        for _ in range(50):
            point = tuple(
                low + rng.random() * (high - low)
                for low, high in zip(query.lows, query.highs)
            )
            assert any(
                region_of_bits(prefix, 2).contains_point(point)
                for prefix in out
            )


class TestRangeQuery:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        index = make_index(saturation=5)  # force saturation descents
        points = [(rng.random(), rng.random()) for _ in range(250)]
        for point in points:
            index.insert(point)
        for _ in range(8):
            lows = (rng.random() * 0.7, rng.random() * 0.7)
            highs = (
                lows[0] + rng.random() * 0.3, lows[1] + rng.random() * 0.3
            )
            query = Region(lows, highs)
            result = index.range_query(query)
            assert sorted(r.key for r in result.records) == (
                brute_force_range(points, query)
            )

    def test_unsaturated_query_is_one_round(self):
        index = make_index(saturation=10_000)
        rng = random.Random(7)
        for _ in range(100):
            index.insert((rng.random(), rng.random()))
        result = index.range_query(Region((0.2, 0.2), (0.4, 0.4)))
        assert result.rounds == 1

    def test_saturated_query_needs_more_rounds(self):
        index = make_index(saturation=2)
        rng = random.Random(8)
        for _ in range(300):
            index.insert((rng.random(), rng.random()))
        result = index.range_query(Region((0.05, 0.05), (0.95, 0.95)))
        assert result.rounds > 1

    def test_bandwidth_exceeds_mlight(self):
        """DST's virtual-depth fragmentation: far more lookups than
        there are data-bearing cells."""
        index = make_index()
        rng = random.Random(9)
        for _ in range(100):
            index.insert((rng.random(), rng.random()))
        result = index.range_query(Region((0.1, 0.1), (0.6, 0.6)))
        assert result.lookups > 50
