"""Tests for the binary-search lookup (Section 5)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import IndexCorruptionError
from repro.core.bucket import LeafBucket
from repro.core.keys import bucket_key
from repro.core.lookup import lookup_point
from repro.core.naming import naming_function
from repro.dht.localhash import LocalDht
from tests.conftest import points_strategy, random_tree_leaves


def materialize_tree(leaves, dims, dht):
    """Store a bucket for every leaf at its name's key."""
    for leaf in leaves:
        dht.put(bucket_key(naming_function(leaf, dims)), LeafBucket(leaf, dims))


def covering_leaf(leaves, dims, point):
    """Oracle: the unique leaf whose cell contains the point."""
    from repro.common.geometry import region_of_label

    hits = [
        leaf
        for leaf in leaves
        if region_of_label(leaf, dims).contains_point(point)
    ]
    assert len(hits) == 1
    return hits[0]


class TestAgainstOracle:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_random_trees_random_points(self, dims, seed):
        rng = random.Random(seed)
        max_depth = 12
        leaves = random_tree_leaves(rng, dims, max_depth)
        dht = LocalDht(16)
        materialize_tree(leaves, dims, dht)
        for _ in range(30):
            point = tuple(rng.random() for _ in range(dims))
            result = lookup_point(dht, point, dims, max_depth)
            assert result.bucket.label == covering_leaf(leaves, dims, point)

    @given(points_strategy(2), st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_property_2d(self, point, seed):
        rng = random.Random(seed)
        leaves = random_tree_leaves(rng, 2, 10)
        dht = LocalDht(8)
        materialize_tree(leaves, 2, dht)
        result = lookup_point(dht, point, 2, 10)
        assert result.bucket.label == covering_leaf(leaves, 2, point)


class TestCostBounds:
    def test_singleton_tree_single_probe_range(self):
        dht = LocalDht(8)
        materialize_tree(["001"], 2, dht)
        result = lookup_point(dht, (0.3, 0.9), 2, 20)
        assert result.bucket.label == "001"
        assert result.lookups <= math.ceil(math.log2(21)) + 2

    @pytest.mark.parametrize("seed", range(6))
    def test_probe_count_at_most_candidates(self, seed):
        """Each probe strictly shrinks the interval, so probes never
        exceed the candidate-set size D+1."""
        rng = random.Random(seed)
        max_depth = 14
        leaves = random_tree_leaves(rng, 2, max_depth)
        dht = LocalDht(8)
        materialize_tree(leaves, 2, dht)
        for _ in range(20):
            point = (rng.random(), rng.random())
            result = lookup_point(dht, point, 2, max_depth)
            assert result.lookups <= max_depth + 1
            assert result.rounds == result.lookups

    def test_uniform_tree_probes_logarithmic(self):
        """On a full uniform tree the binary search meets its O(log D)
        promise."""
        depth = 8
        leaves = ["001" + format(i, f"0{depth}b") for i in range(2**depth)]
        dht = LocalDht(8)
        materialize_tree(leaves, 2, dht)
        rng = random.Random(1)
        worst = 0
        for _ in range(50):
            point = (rng.random(), rng.random())
            worst = max(
                worst, lookup_point(dht, point, 2, 28).lookups
            )
        assert worst <= math.ceil(math.log2(29)) + 3


class TestBoundedLookup:
    def test_max_label_length_restricts_search(self):
        rng = random.Random(0)
        leaves = random_tree_leaves(rng, 2, 10)
        dht = LocalDht(8)
        materialize_tree(leaves, 2, dht)
        point = (0.3, 0.7)
        target = covering_leaf(leaves, 2, point)
        result = lookup_point(
            dht, point, 2, 10,
            min_label_length=len(target),
            max_label_length=len(target),
        )
        assert result.bucket.label == target
        assert result.lookups == 1


class TestFailures:
    def test_empty_dht_raises_corruption(self):
        dht = LocalDht(8)
        with pytest.raises(IndexCorruptionError):
            lookup_point(dht, (0.5, 0.5), 2, 10)

    def test_inconsistent_tree_detected(self):
        """A tree missing an entire subtree's buckets cannot resolve
        points of that subtree."""
        dht = LocalDht(8)
        # Leaves 0010* exist, but the 0011 side is missing entirely.
        materialize_tree(["00100", "00101"], 2, dht)
        with pytest.raises(IndexCorruptionError):
            lookup_point(dht, (0.9, 0.9), 2, 10)
