"""Tests for the k-NN extension."""

import random

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.core.index import MLightIndex
from repro.core.knn import euclidean
from repro.dht.localhash import LocalDht


def make_index(dims=2, **overrides):
    defaults = dict(
        dims=dims, max_depth=16, split_threshold=8, merge_threshold=4
    )
    defaults.update(overrides)
    return MLightIndex(LocalDht(16), IndexConfig(**defaults))


def brute_force_knn(points, target, k):
    return sorted(
        points, key=lambda point: (euclidean(point, target), point)
    )[:k]


class TestExactness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_brute_force(self, seed, k):
        rng = random.Random(seed)
        index = make_index()
        points = [(rng.random(), rng.random()) for _ in range(300)]
        for point in points:
            index.insert(point)
        for _ in range(10):
            target = (rng.random(), rng.random())
            result = index.knn(target, k)
            got = [neighbor.record.key for neighbor in result.neighbors]
            expected = brute_force_knn(points, target, k)
            # Compare by distance (ties may legitimately reorder).
            assert [euclidean(p, target) for p in got] == pytest.approx(
                [euclidean(p, target) for p in expected]
            )

    def test_distances_sorted(self):
        rng = random.Random(9)
        index = make_index()
        for _ in range(200):
            index.insert((rng.random(), rng.random()))
        result = index.knn((0.5, 0.5), 15)
        distances = [neighbor.distance for neighbor in result.neighbors]
        assert distances == sorted(distances)

    def test_3d(self):
        rng = random.Random(10)
        index = make_index(dims=3, max_depth=15)
        points = [
            (rng.random(), rng.random(), rng.random()) for _ in range(200)
        ]
        for point in points:
            index.insert(point)
        target = (0.3, 0.3, 0.3)
        result = index.knn(target, 5)
        got = [neighbor.record.key for neighbor in result.neighbors]
        expected = brute_force_knn(points, target, 5)
        assert [euclidean(p, target) for p in got] == pytest.approx(
            [euclidean(p, target) for p in expected]
        )


class TestEdgeCases:
    def test_fewer_records_than_k(self):
        index = make_index()
        index.insert((0.1, 0.1), "a")
        index.insert((0.9, 0.9), "b")
        result = index.knn((0.5, 0.5), 10)
        assert len(result.neighbors) == 2

    def test_empty_index(self):
        index = make_index()
        result = index.knn((0.5, 0.5), 3)
        assert result.neighbors == ()

    def test_query_point_in_empty_region(self):
        """Target in a far corner away from all data."""
        rng = random.Random(11)
        index = make_index()
        points = [
            (rng.random() * 0.2, rng.random() * 0.2) for _ in range(100)
        ]
        for point in points:
            index.insert(point)
        result = index.knn((0.95, 0.95), 3)
        expected = brute_force_knn(points, (0.95, 0.95), 3)
        got = [neighbor.record.key for neighbor in result.neighbors]
        assert [euclidean(p, (0.95, 0.95)) for p in got] == pytest.approx(
            [euclidean(p, (0.95, 0.95)) for p in expected]
        )

    def test_invalid_k(self):
        index = make_index()
        with pytest.raises(ReproError):
            index.knn((0.5, 0.5), 0)


class TestCosts:
    def test_local_query_cheaper_than_full_scan(self):
        """A k-NN in a dense region should not enumerate the tree."""
        rng = random.Random(12)
        index = make_index(split_threshold=16)
        for _ in range(2000):
            index.insert((rng.random(), rng.random()))
        tree_size = index.tree_size()
        result = index.knn((0.5, 0.5), 5)
        assert result.lookups < tree_size
