"""Unit tests for the service plane: wire protocol, actor runtime,
retry/fault/tracer integration, and the load generator."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import (
    DhtKeyError,
    NodeUnreachableError,
    ReproError,
)
from repro.dht.api import ENVELOPE_WIRE_BYTES
from repro.dht.peer import HashRing, KeyValuePeer
from repro.dht.retry import RetryingDht
from repro.dht.faults import FaultPlan, FaultyDht
from repro.obs.trace import Tracer
from repro.service.node import ServiceDht, WallClock, serve_request
from repro.service.loadgen import (
    LoadReport,
    percentile,
    publish,
    run_load,
)
from repro.service.wire import (
    HEADER,
    FrameDecoder,
    Op,
    WireError,
    decode_frame,
    encode_error,
    encode_reply,
    encode_request,
    frame_wire_cost,
    rebuild_error,
)
from repro.workloads.traces import Operation, request_trace


class TestWireProtocol:
    def test_request_round_trip(self):
        data = encode_request(Op.PUT, 7, "leaf-0101", {"a": 1})
        frame = decode_frame(data)
        assert frame.op is Op.PUT
        assert frame.request_id == 7
        assert frame.body == ("leaf-0101", {"a": 1})

    def test_reply_round_trip(self):
        frame = decode_frame(encode_reply(9, [1, 2, 3]))
        assert frame.op is Op.REPLY_OK
        assert frame.is_reply
        assert frame.body == [1, 2, 3]

    def test_error_reply_rebuilds_library_errors(self):
        frame = decode_frame(encode_error(3, DhtKeyError("key 'x' gone")))
        rebuilt = rebuild_error(frame.body)
        assert isinstance(rebuilt, DhtKeyError)
        assert "key 'x' gone" in str(rebuilt)

    def test_unknown_error_class_degrades_to_wire_error(self):
        frame = decode_frame(encode_error(3, RuntimeError("boom")))
        rebuilt = rebuild_error(frame.body)
        assert isinstance(rebuilt, WireError)
        assert "boom" in str(rebuilt)

    def test_bad_magic_rejected(self):
        data = bytearray(encode_reply(1, None))
        data[:4] = b"EVIL"
        with pytest.raises(WireError, match="magic"):
            decode_frame(bytes(data))

    def test_bad_version_rejected(self):
        data = bytearray(encode_reply(1, None))
        data[4] = 99
        with pytest.raises(WireError, match="version"):
            decode_frame(bytes(data))

    def test_surplus_bytes_rejected_by_decode_frame(self):
        data = encode_reply(1, None) + b"x"
        with pytest.raises(WireError, match="leftover"):
            decode_frame(data)

    def test_decoder_reassembles_arbitrary_chunking(self):
        stream = b"".join(
            encode_request(Op.GET, i, f"key-{i}") for i in range(20)
        )
        for chunk_size in (1, 3, 7, len(stream)):
            decoder = FrameDecoder()
            frames = []
            for start in range(0, len(stream), chunk_size):
                frames.extend(
                    decoder.feed(stream[start : start + chunk_size])
                )
            assert [f.request_id for f in frames] == list(range(20))

    def test_wire_cost_uses_codec_accounting(self):
        from repro.core.bucket import LeafBucket
        from repro.core.codec import encoded_bucket_size
        from repro.core.records import Record

        bucket = LeafBucket("001", 2)
        for i in range(5):
            bucket.add(Record((i / 10.0, 0.5)))
        cost = frame_wire_cost(Op.PUT, "leaf", bucket)
        # Record-bearing payloads are priced at their exact codec size;
        # a non-record payload costs one envelope.
        assert cost == (
            HEADER.size + len(b"leaf") + encoded_bucket_size(bucket)
        )
        assert frame_wire_cost(Op.PUT, "leaf", "opaque") == (
            HEADER.size + len(b"leaf") + ENVELOPE_WIRE_BYTES
        )

    def test_serve_request_never_raises(self):
        peer = KeyValuePeer("p-0")
        reply = decode_frame(
            serve_request(
                peer, decode_frame(encode_request(Op.REMOVE, 5, "absent"))
            )
        )
        assert reply.op is Op.REPLY_ERR
        assert isinstance(rebuild_error(reply.body), DhtKeyError)


class TestHashRing:
    def test_matches_localdht_placement(self):
        from repro.dht.localhash import LocalDht

        ring = HashRing([f"peer-{i:04d}" for i in range(16)])
        local = LocalDht(16)
        for key in ("a", "leaf-0101", "x" * 40, "00110"):
            assert ring.peer_of(key) == local.peer_of(key)

    def test_empty_ring_rejected(self):
        with pytest.raises(ReproError):
            HashRing([])


class TestKeyValuePeer:
    def test_primitives(self):
        peer = KeyValuePeer("p-7")
        assert peer.serve("contains", "k") is False
        assert peer.serve("get", "k") is None
        peer.serve("put", "k", 42)
        assert peer.serve("get", "k") == 42
        assert peer.serve("lookup", "k") == "p-7"
        assert peer.serve("remove", "k") == 42
        with pytest.raises(DhtKeyError):
            peer.serve("remove", "k")

    def test_unknown_op_rejected(self):
        with pytest.raises(ReproError, match="unknown peer operation"):
            KeyValuePeer("p").serve("gossip", "k")


@pytest.mark.parametrize("transport", ["asyncio", "tcp"])
class TestServiceDht:
    def test_primitives_and_errors_cross_the_wire(self, transport):
        with ServiceDht(4, transport=transport) as dht:
            dht.put("k1", "v1")
            assert dht.get("k1") == "v1"
            assert dht.get("missing") is None
            assert dht.lookup("k1") == dht.peer_of("k1")
            assert dht.remove("k1") == "v1"
            with pytest.raises(DhtKeyError):
                dht.remove("k1")
            with pytest.raises(DhtKeyError):
                dht.rewrite_local("k1", "v2")

    def test_batches_are_one_round(self, transport):
        with ServiceDht(4, transport=transport) as dht:
            dht.put_many([(f"k{i}", i) for i in range(10)])
            assert dht.get_many([f"k{i}" for i in range(10)]) == list(
                range(10)
            )
            assert dht.stats.batch_rounds == 2
            assert dht.stats.batch_ops == 20
            assert dht.network.stats.rounds == 2
            assert dht.network.stats.max_round_fanout == 10

    def test_values_cross_by_copy_like_a_real_network(self, transport):
        """Mutating a value after put must not mutate the stored copy —
        the wire pickles; aliasing bugs that SimNetwork would mask
        surface here."""
        with ServiceDht(2, transport=transport) as dht:
            value = {"records": []}
            dht.put("k", value)
            value["records"].append("local-mutation")
            assert dht.get("k") == {"records": []}

    def test_close_is_idempotent_and_final(self, transport):
        dht = ServiceDht(2, transport=transport)
        dht.put("k", 1)
        dht.close()
        dht.close()
        with pytest.raises(ReproError, match="closed"):
            dht.get("k")

    def test_wall_clock_spans_recorded(self, transport):
        with ServiceDht(2, transport=transport) as dht:
            dht.put("k", 1)
            dht.get_many(["k"])
            clock_kind, spent = dht.network.stats.latency_clock()
        assert clock_kind == "wall"
        assert spent > 0.0


class TestServiceOracles:
    def test_items_and_load_by_peer(self):
        with ServiceDht(4) as dht:
            for i in range(20):
                dht.put(f"k{i}", i)
            stored = dict(dht.items())
            assert stored == {f"k{i}": i for i in range(20)}
            loads = dht.load_by_peer()
            assert sum(loads.values()) == 20
            assert set(loads) == set(dht.peers())

    def test_unstarted_instance_is_empty_not_crashed(self):
        dht = ServiceDht(2)
        assert list(dht.items()) == []
        assert sum(dht.load_by_peer().values()) == 0
        dht.close()


class TestWrapperStack:
    def test_retrying_dht_wraps_the_service_runtime(self):
        with ServiceDht(4) as inner:
            dht = RetryingDht(inner, attempts=3)
            dht.put("k", "v")
            assert dht.get("k") == "v"
            # The retry wrapper resolved its clock from the service
            # transport: waits would burn wall time, not virtual time.
            assert dht.clock is inner.network.clock

    def test_faulty_dht_injects_over_the_wire(self):
        with ServiceDht(4) as inner:
            plan = FaultPlan(drop_rate=0.9, seed=1)
            dht = FaultyDht(inner, plan)
            inner.put("k", "v")
            dropped = 0
            for _ in range(20):
                try:
                    dht.get("k")
                except NodeUnreachableError:
                    dropped += 1
            assert dropped >= 1
            assert dht.stats.faults_dropped == dropped

    def test_tracer_attaches_with_zero_index_changes(self):
        from repro.common.config import IndexConfig
        from repro.core.index import MLightIndex

        with ServiceDht(4) as dht:
            index = MLightIndex(
                dht,
                IndexConfig(
                    dims=2, split_threshold=8, merge_threshold=4,
                    tracing=True,
                ),
            )
            assert isinstance(index.tracer, Tracer)
            assert dht.network.tracer is index.tracer
            index.insert((0.25, 0.75), "a")
            index.lookup((0.25, 0.75))
            kinds = {span.kind for span in index.tracer.spans}
            assert "dht" in kinds and "query" in kinds


class TestWallClock:
    def test_now_is_monotonic_and_advance_sleeps(self):
        clock = WallClock()
        before = clock.now
        clock.advance(0.01)
        assert clock.now - before >= 0.01
        clock.advance(0.0)  # no-op, must not raise


class TestPercentile:
    def test_empty_and_singleton(self):
        assert percentile([], 99) == 0.0
        assert percentile([5.0], 50) == 5.0

    def test_interpolates(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 99) == pytest.approx(99.01)
        assert percentile(values, 95) == pytest.approx(95.05)


class TestRequestTrace:
    def test_mix_is_deterministic_and_weighted(self):
        points = [(0.1, 0.2), (0.3, 0.4)]
        trace = request_trace(points, 300, seed=5)
        again = request_trace(points, 300, seed=5)
        assert trace == again
        kinds = [op.kind for op in trace]
        assert kinds.count("lookup") > kinds.count("range")
        assert all(
            op.region is not None for op in trace if op.kind == "range"
        )

    def test_regions_stay_in_the_unit_cube(self):
        points = [(0.001, 0.999)]
        for op in request_trace(points, 50, range_fraction=1.0,
                                lookup_fraction=0.0, insert_fraction=0.0):
            assert all(0.0 <= low for low in op.region.lows)
            assert all(high <= 1.0 for high in op.region.highs)

    def test_bad_arguments_rejected(self):
        with pytest.raises(ReproError):
            request_trace([], 10)
        with pytest.raises(ReproError):
            request_trace([(0.5, 0.5)], 10, lookup_fraction=-1.0)
        with pytest.raises(ReproError):
            request_trace([(0.5, 0.5)], 10, span=0.0)


class TestLoadGenerator:
    def _loaded_index(self, n=300):
        from repro.common.config import IndexConfig
        from repro.core.index import MLightIndex
        from repro.datasets.synthetic import uniform_points
        from repro.runtime import create_dht

        points = uniform_points(n, seed=11)
        dht = create_dht(kind="asyncio", n_peers=2)
        index = MLightIndex(
            dht, IndexConfig(dims=2, split_threshold=20, merge_threshold=10)
        )
        index.insert_many(points)
        return index, points

    def test_open_loop_run_reports_percentiles(self):
        index, points = self._loaded_index()
        try:
            report = run_load(
                index,
                request_trace(points, 100, seed=2),
                target_qps=400.0,
                workers=8,
                runtime_label="asyncio",
                records_loaded=len(points),
                n_peers=2,
            )
        finally:
            index.dht.close()
        assert report.completed == 100
        assert report.failed == 0
        assert report.achieved_qps > 0
        assert (
            report.latency_ms["p50"]
            <= report.latency_ms["p95"]
            <= report.latency_ms["p99"]
            <= report.latency_ms["max"]
        )
        rendered = report.render()
        assert "p99 latency (ms)" in rendered
        assert "achieved QPS" in rendered
        # Per-operation-type percentiles ride along in the report and
        # the rendered table.
        assert set(report.latency_ms_by_op) <= {"lookup", "range", "insert"}
        assert "lookup" in report.latency_ms_by_op
        for summary in report.latency_ms_by_op.values():
            assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert "latency by operation type" in rendered

    def test_failed_operations_are_counted_not_raised(self):
        index, points = self._loaded_index(50)
        bad = [Operation("bogus", (0.5, 0.5))]
        try:
            report = run_load(
                index,
                request_trace(points, 10, seed=2) + bad,
                target_qps=1000.0,
            )
        finally:
            index.dht.close()
        assert report.failed == 1
        assert report.completed == 10

    def test_publish_writes_json(self, tmp_path):
        report = LoadReport(
            runtime="asyncio", peers=2, records=10, target_qps=100.0,
            duration_s=0.1, operations=10, completed=10, failed=0,
            achieved_qps=99.0,
            latency_ms={"p50": 1.0, "p95": 2.0, "p99": 3.0,
                        "mean": 1.2, "max": 3.5},
        )
        path = publish(report, tmp_path / "BENCH_service_load.json")
        data = json.loads(path.read_text())
        assert data["latency_ms"]["p99"] == 3.0
        assert data["achieved_qps"] == 99.0
        assert report.achieved_fraction() == pytest.approx(0.99)

    def test_validation(self):
        index, points = self._loaded_index(50)
        try:
            with pytest.raises(ReproError):
                run_load(index, [], target_qps=10.0)
            with pytest.raises(ReproError):
                run_load(
                    index, request_trace(points, 5), target_qps=0.0
                )
        finally:
            index.dht.close()
