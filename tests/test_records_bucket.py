"""Tests for records, leaf buckets and the encoded local tree."""

import pytest

from repro.common.errors import InvalidLabelError, InvalidPointError
from repro.common.geometry import Region
from repro.core.bucket import LeafBucket
from repro.core.keys import bucket_key, name_from_key
from repro.core.records import Record


class TestRecord:
    def test_make_validates(self):
        record = Record.make([0.1, 0.2], "v", dims=2)
        assert record.key == (0.1, 0.2)
        assert record.value == "v"
        assert record.dims == 2

    def test_make_rejects_bad_points(self):
        with pytest.raises(InvalidPointError):
            Record.make((0.1,), dims=2)
        with pytest.raises(InvalidPointError):
            Record.make((0.1, 1.5), dims=2)

    def test_hashable_and_equal(self):
        assert Record((0.1, 0.2), "v") == Record((0.1, 0.2), "v")
        assert len({Record((0.1, 0.2)), Record((0.1, 0.2))}) == 1


class TestBucketRecords:
    def test_add_and_load(self):
        bucket = LeafBucket("001", 2)
        bucket.add(Record((0.5, 0.5)))
        assert bucket.load == 1
        assert not bucket.is_empty

    def test_add_outside_cell_rejected(self):
        bucket = LeafBucket("0010", 2)  # x in [0, 0.5)
        with pytest.raises(InvalidLabelError):
            bucket.add(Record((0.7, 0.1)))

    def test_remove(self):
        bucket = LeafBucket("001", 2)
        record = Record((0.5, 0.5), "v")
        bucket.add(record)
        assert bucket.remove(record)
        assert not bucket.remove(record)

    def test_matching_uses_closed_query(self):
        bucket = LeafBucket("001", 2)
        bucket.add(Record((0.5, 0.5)))
        bucket.add(Record((0.7, 0.7)))
        hits = bucket.matching(Region((0.4, 0.4), (0.5, 0.5)))
        assert [record.key for record in hits] == [(0.5, 0.5)]

    def test_invalid_label_rejected(self):
        with pytest.raises(InvalidLabelError):
            LeafBucket("01", 2)


class TestLocalTree:
    """The label store encodes the whole local tree (Section 3.3)."""

    def test_ancestors(self):
        bucket = LeafBucket("001101", 2)
        assert bucket.local_tree_ancestors() == [
            "00110", "0011", "001", "00",
        ]

    def test_branch_nodes(self):
        bucket = LeafBucket("001101", 2)
        assert bucket.branch_nodes_below("001") == [
            "0010", "00111", "001100",
        ]

    def test_descendant_check(self):
        bucket = LeafBucket("001101", 2)
        assert bucket.is_descendant_or_self_of("0011")
        assert bucket.is_descendant_or_self_of("001101")
        assert not bucket.is_descendant_or_self_of("0010")

    def test_region_and_covers(self):
        bucket = LeafBucket("0010", 2)
        assert bucket.region == Region((0.0, 0.0), (0.5, 1.0))
        assert bucket.covers((0.49, 0.99))
        assert not bucket.covers((0.5, 0.0))


class TestKeys:
    def test_roundtrip(self):
        assert name_from_key(bucket_key("00101")) == "00101"

    def test_reject_foreign_keys(self):
        with pytest.raises(ValueError):
            name_from_key("pht:001")
