"""Tests for the experiment harness and figure runners (small scale).

Each runner is exercised end-to-end on a reduced dataset, asserting the
qualitative *shapes* the paper reports rather than absolute numbers.
"""

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.datasets.northeast import northeast_surrogate
from repro.experiments import ablation, fig5, fig6, fig7
from repro.experiments.harness import (
    build_index,
    default_sample_points,
    progressive_insert,
)
from repro.experiments.tables import format_table, save_csv


@pytest.fixture(scope="module")
def points():
    return northeast_surrogate(2500, seed=17)


@pytest.fixture(scope="module")
def config():
    return IndexConfig(
        dims=2, max_depth=20, split_threshold=25,
        merge_threshold=12, expected_load=18,
    )


class TestHarness:
    def test_build_index_schemes(self, config):
        for scheme in ("mlight", "mlight-da", "pht", "dst", "naive"):
            index = build_index(scheme, config, n_peers=8)
            index.insert((0.5, 0.5))
            assert index.total_records() == 1

    def test_unknown_scheme(self, config):
        with pytest.raises(ReproError):
            build_index("btree", config)

    def test_default_sample_points(self):
        assert default_sample_points(100, 4) == [25, 50, 75, 100]
        assert default_sample_points(3, 10) == [1, 2, 3]

    def test_progressive_insert_samples(self, config, points):
        index = build_index("mlight", config, n_peers=8)
        samples = progressive_insert(
            index, points[:300], sample_at=[100, 200, 300]
        )
        assert [s.inserted for s in samples] == [100, 200, 300]
        assert samples[0].lookups < samples[1].lookups < samples[2].lookups


class TestFig5:
    def test_datasize_sweep_shapes(self, points, config):
        series = fig5.run_datasize_sweep(points, config, samples=3)
        by_name = {entry.scheme: entry for entry in series}
        assert set(by_name) == {"mlight", "pht", "dst"}
        for entry in series:
            # Cumulative costs are monotone (Fig. 5a/5b curves rise).
            assert list(entry.lookups) == sorted(entry.lookups)
            assert list(entry.records_moved) == sorted(entry.records_moved)
        # m-LIGHT cheapest, DST most expensive (final sample).
        assert by_name["mlight"].lookups[-1] < by_name["pht"].lookups[-1]
        assert by_name["pht"].lookups[-1] < by_name["dst"].lookups[-1]
        assert (
            by_name["mlight"].records_moved[-1]
            < by_name["pht"].records_moved[-1]
            < by_name["dst"].records_moved[-1]
        )
        rendered = fig5.render(series, "data size")
        assert "mlight" in rendered and "DHT-lookup cost" in rendered

    def test_threshold_sweep_shapes(self, points, config):
        series = fig5.run_threshold_sweep(
            points[:1200], config, thresholds=(25, 100),
            schemes=("mlight", "dst"),
        )
        by_name = {entry.scheme: entry for entry in series}
        # DST's movement falls when saturation (== theta) shrinks.
        dst = by_name["dst"]
        assert dst.records_moved[0] < dst.records_moved[-1]


class TestFig6:
    def test_loadbalance_shapes(self, points, config):
        series = fig6.run_loadbalance_experiment(
            points, config, n_samples=2, n_peers=32, virtual_nodes=32
        )
        by_name = {entry.strategy: entry for entry in series}
        assert set(by_name) == {"threshold", "data-aware"}
        threshold = by_name["threshold"].samples[-1]
        data_aware = by_name["data-aware"].samples[-1]
        # The headline Fig. 6b effect: fewer empty buckets.
        assert data_aware.empty_fraction <= threshold.empty_fraction
        rendered = fig6.render(series)
        assert "empty buckets" in rendered


class TestFig7:
    def test_rangequery_shapes(self, points, config):
        series = fig7.run_rangequery_experiment(
            points, config, spans=(0.05, 0.3), queries_per_span=3
        )
        by_name = {entry.variant: entry for entry in series}
        assert set(by_name) == {
            "mlight-basic", "mlight-parallel-2", "mlight-parallel-4",
            "pht", "dst",
        }
        # Bandwidth: basic < parallel variants; dst worst of all.
        for position in range(2):
            basic = by_name["mlight-basic"].bandwidth[position]
            assert basic <= by_name["mlight-parallel-2"].bandwidth[position]
            assert basic < by_name["dst"].bandwidth[position]
            assert basic < by_name["pht"].bandwidth[position]
        # Latency: parallel-4 <= parallel-2 <= basic <= pht.
        for position in range(2):
            assert (
                by_name["mlight-parallel-4"].latency[position]
                <= by_name["mlight-parallel-2"].latency[position]
                <= by_name["mlight-basic"].latency[position]
            )
            assert (
                by_name["mlight-basic"].latency[position]
                <= by_name["pht"].latency[position]
            )
        rendered = fig7.render(series)
        assert "Bandwidth" in rendered and "Latency" in rendered


class TestAblations:
    def test_naming_ablation(self, points, config):
        rows = ablation.run_naming_ablation(points[:800], config)
        by_name = {row.name: row for row in rows}
        assert by_name["mlight"].lookups < by_name["naive-mapping"].lookups
        assert (
            by_name["mlight"].records_moved
            < by_name["naive-mapping"].records_moved
        )

    def test_lookup_ablation(self, points, config):
        keys = points[:50]
        rows = ablation.run_lookup_ablation(points[:800], keys, config)
        by_name = {row.name: row for row in rows}
        assert (
            by_name["binary-search"].lookups
            < by_name["linear-probing"].lookups
        )

    def test_substrate_ablation(self, points, config):
        rows = ablation.run_substrate_ablation(
            points[:300], config, n_peers=8
        )
        by_name = {row.name: row for row in rows}
        assert set(by_name) == {"local", "chord", "kademlia", "pastry"}
        # Index-level costs identical; only overlay hops differ.
        assert by_name["local"].lookups == by_name["chord"].lookups
        assert by_name["local"].lookups == by_name["kademlia"].lookups
        assert by_name["local"].lookups == by_name["pastry"].lookups
        assert by_name["local"].hops == 0
        assert by_name["chord"].hops > 0
        rendered = ablation.render(rows, "substrates")
        assert "chord" in rendered


class TestTables:
    def test_format_table(self):
        text = format_table(
            ["name", "value"], [["a", 1234], ["b", 0.5]], title="T"
        )
        assert "T" in text
        assert "1,234" in text

    def test_save_csv(self, tmp_path):
        path = tmp_path / "out" / "table.csv"
        save_csv(path, ["x", "y"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,2"
