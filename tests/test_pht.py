"""Tests for the PHT baseline."""

import random

import pytest

from repro.common.config import IndexConfig
from repro.common.geometry import Region
from repro.baselines.pht import PhtIndex, _key
from repro.dht.localhash import LocalDht
from tests.conftest import brute_force_range


def small_config(**overrides):
    defaults = dict(
        dims=2, max_depth=16, split_threshold=6, merge_threshold=3
    )
    defaults.update(overrides)
    return IndexConfig(**defaults)


def make_index(**overrides):
    return PhtIndex(LocalDht(16), small_config(**overrides))


class TestTrieStructure:
    def test_bootstrap_root_leaf(self):
        index = make_index()
        root = index.dht.peek(_key(""))
        assert root.is_leaf
        assert root.prefix == ""

    def test_internal_nodes_hold_no_data(self):
        rng = random.Random(0)
        index = make_index()
        for _ in range(100):
            index.insert((rng.random(), rng.random()))
        internals = [
            value
            for key, value in index.dht.items()
            if key.startswith("pht:") and not value.is_leaf
        ]
        assert internals  # splits happened
        assert all(not node.records for node in internals)

    def test_leaves_respect_threshold(self):
        rng = random.Random(1)
        index = make_index()
        for _ in range(200):
            index.insert((rng.random(), rng.random()))
        for leaf in index.leaves():
            assert leaf.load <= index._config.split_threshold

    def test_leaf_linked_list_is_curve_ordered(self):
        rng = random.Random(2)
        index = make_index()
        for _ in range(300):
            index.insert((rng.random(), rng.random()))
        leaves = {leaf.prefix: leaf for leaf in index.leaves()}
        heads = [p for p, leaf in leaves.items() if leaf.prev_leaf is None]
        assert len(heads) == 1
        chain = []
        cursor = heads[0]
        while cursor is not None:
            chain.append(cursor)
            cursor = leaves[cursor].next_leaf
        assert len(chain) == len(leaves)
        assert chain == sorted(chain)  # z-order = lexicographic


class TestLookup:
    def test_lookup_finds_covering_leaf(self):
        rng = random.Random(3)
        index = make_index()
        points = [(rng.random(), rng.random()) for _ in range(150)]
        for point in points:
            index.insert(point)
        from repro.common.geometry import region_of_bits

        for point in points[:30]:
            leaf, probes = index.lookup(point)
            assert region_of_bits(leaf.prefix, 2).contains_point(point)
            assert probes <= 6  # binary search over <=17 lengths


class TestMaintenance:
    def test_split_moves_all_records(self):
        """Unlike m-LIGHT, both PHT children change DHT keys."""
        index = make_index(split_threshold=4)
        points = [(x, y) for x in (0.1, 0.6) for y in (0.1, 0.6)]
        for point in points:
            index.insert(point)
        moved_before = index.dht.stats.records_moved
        index.insert((0.3, 0.3))  # fifth record triggers the split
        split_movement = index.dht.stats.records_moved - moved_before - 1
        assert split_movement == 5  # every record moved

    def test_delete_and_merge(self):
        rng = random.Random(4)
        index = make_index()
        points = [(rng.random(), rng.random()) for _ in range(200)]
        for point in points:
            index.insert(point)
        grown = index.tree_size()
        for point in points[:190]:
            assert index.delete(point)
        assert index.total_records() == 10
        assert index.tree_size() < grown
        # Linked list still consistent after merges.
        leaves = {leaf.prefix: leaf for leaf in index.leaves()}
        heads = [p for p, leaf in leaves.items() if leaf.prev_leaf is None]
        assert len(heads) == 1

    def test_delete_absent_returns_false(self):
        index = make_index()
        assert not index.delete((0.5, 0.5))


class TestRangeQuery:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        index = make_index()
        points = [(rng.random(), rng.random()) for _ in range(300)]
        for point in points:
            index.insert(point)
        for _ in range(10):
            lows = (rng.random() * 0.7, rng.random() * 0.7)
            highs = (
                lows[0] + rng.random() * 0.3, lows[1] + rng.random() * 0.3
            )
            query = Region(lows, highs)
            result = index.range_query(query)
            assert sorted(r.key for r in result.records) == (
                brute_force_range(points, query)
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_scan_mode_matches_brute_force(self, seed):
        rng = random.Random(seed)
        index = make_index()
        points = [(rng.random(), rng.random()) for _ in range(250)]
        for point in points:
            index.insert(point)
        for _ in range(8):
            lows = (rng.random() * 0.7, rng.random() * 0.7)
            highs = (
                lows[0] + rng.random() * 0.3, lows[1] + rng.random() * 0.3
            )
            query = Region(lows, highs)
            result = index.range_query_scan(query)
            assert sorted(r.key for r in result.records) == (
                brute_force_range(points, query)
            )

    def test_scan_mode_visits_more_leaves_than_descent(self):
        """The z-interval between the query corners covers cells
        outside the rectangle — the scan's documented inefficiency."""
        rng = random.Random(5)
        index = make_index()
        for _ in range(400):
            index.insert((rng.random(), rng.random()))
        query = Region((0.1, 0.4), (0.3, 0.6))
        scan = index.range_query_scan(query)
        descent = index.range_query(query)
        assert len(scan.visited_leaves) >= len(descent.visited_leaves)

    def test_costs_include_internal_nodes(self):
        """PHT probes routing nodes, so lookups exceed leaves visited."""
        rng = random.Random(6)
        index = make_index()
        for _ in range(400):
            index.insert((rng.random(), rng.random()))
        result = index.range_query(Region((0.0, 0.0), (1.0, 1.0)))
        assert result.lookups > len(result.visited_leaves)
