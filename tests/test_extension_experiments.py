"""Tests for the extension experiments E9 (dimensionality) and E10
(churn availability)."""

import pytest

from repro.common.config import IndexConfig
from repro.datasets.northeast import northeast_surrogate
from repro.experiments import churn_experiment, scaling


class TestDimensionalityScaling:
    @pytest.fixture(scope="class")
    def samples(self):
        config = IndexConfig(
            dims=2, max_depth=24, split_threshold=20, merge_threshold=10
        )
        return scaling.run_dimensionality_sweep(
            1200, config, dims_list=(1, 2, 3)
        )

    def test_covers_requested_dims(self, samples):
        assert [s.dims for s in samples] == [1, 2, 3]

    def test_lookup_probes_independent_of_dims(self, samples):
        """Binary search depends on D, not m."""
        probes = [s.mean_lookup_probes for s in samples]
        assert max(probes) - min(probes) < 2.0

    def test_query_bandwidth_grows_with_dims(self, samples):
        """Fixed-volume boxes cut more cells in higher dimensions."""
        lookups = [s.mean_query_lookups for s in samples]
        assert lookups[0] < lookups[-1]

    def test_render(self, samples):
        text = scaling.render(samples)
        assert "dims" in text and "query lookups" in text


class TestChurnAvailability:
    @pytest.fixture(scope="class")
    def samples(self):
        config = IndexConfig(
            dims=2, max_depth=16, split_threshold=20, merge_threshold=10
        )
        points = northeast_surrogate(600, seed=9)
        return churn_experiment.run_churn_availability(
            points, config, replication_factors=(1, 3),
            n_peers=12, n_crashes=2, n_queries=8,
        )

    def test_replication_restores_recall(self, samples):
        by_factor = {s.replication: s for s in samples}
        assert by_factor[3].recall == 1.0
        assert by_factor[3].queries_failed == 0
        assert by_factor[1].recall < by_factor[3].recall

    def test_render(self, samples):
        text = churn_experiment.render(samples)
        assert "recall" in text and "replication" in text
