"""Targeted validation tests for IndexConfig's numeric fields.

Misconfiguration should fail at construction with a message naming the
field, the constraint, and the offending value — not surface later as
a silent behaviour change deep inside an experiment.
"""

import random
from dataclasses import fields

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import ReproError, UnknownRuntimeError
from repro.core.index import MLightIndex
from repro.dht.localhash import LocalDht


class TestCacheCapacity:
    def test_negative_rejected_with_message(self):
        with pytest.raises(
            ReproError, match=r"cache_capacity must be >= 0.*got -1"
        ):
            IndexConfig(cache_capacity=-1)

    def test_zero_disables_the_cache(self):
        index = MLightIndex(LocalDht(8), IndexConfig(cache_capacity=0))
        assert index.cache is None

    def test_positive_builds_a_cache(self):
        index = MLightIndex(LocalDht(8), IndexConfig(cache_capacity=16))
        assert index.cache is not None


class TestDefaultLookahead:
    @pytest.mark.parametrize("bad", [0, -1, -4, 3, 6, 12, 100])
    def test_non_powers_of_two_rejected(self, bad):
        with pytest.raises(
            ReproError, match=r"default_lookahead must be a power of two"
        ):
            IndexConfig(default_lookahead=bad)

    def test_message_names_the_offending_value(self):
        with pytest.raises(ReproError, match=r"got 3"):
            IndexConfig(default_lookahead=3)

    @pytest.mark.parametrize("good", [1, 2, 4, 8, 16])
    def test_powers_of_two_accepted(self, good):
        assert IndexConfig(default_lookahead=good).default_lookahead == good

    def test_range_query_uses_the_configured_default(self):
        """``range_query`` with no explicit lookahead must follow the
        config: the wider speculative frontier spends more lookups on
        the same query, which is observable without touching internals."""
        rng = random.Random(2)
        points = [(rng.random(), rng.random()) for _ in range(300)]
        query = ((0.05, 0.05), (0.9, 0.9))
        lookups = {}
        for lookahead in (1, 4):
            config = IndexConfig(
                dims=2, max_depth=12, split_threshold=10,
                merge_threshold=5, default_lookahead=lookahead,
            )
            index = MLightIndex(LocalDht(8), config)
            index.insert_many(points)
            defaulted = index.range_query(query)
            explicit = index.range_query(query, lookahead=lookahead)
            assert defaulted.lookups == explicit.lookups
            assert defaulted.rounds == explicit.rounds
            lookups[lookahead] = defaulted.lookups
        assert lookups[4] > lookups[1]


class TestExecutionPlane:
    def test_unknown_plane_rejected_with_message(self):
        with pytest.raises(
            ReproError, match=r"unknown execution plane 'threaded'"
        ):
            IndexConfig(execution="threaded")

    @pytest.mark.parametrize("plane", ["batched", "sequential"])
    def test_known_planes_accepted(self, plane):
        assert IndexConfig(execution=plane).execution == plane


class TestRuntime:
    def test_unknown_kind_raises_value_error(self):
        """The contract is plain ``ValueError`` compatibility: callers
        guarding with ``except ValueError`` must catch it."""
        with pytest.raises(ValueError, match=r"unknown runtime 'threads'"):
            IndexConfig(runtime="threads")

    def test_unknown_kind_is_the_library_error(self):
        with pytest.raises(UnknownRuntimeError, match=r"sim.*asyncio.*tcp"):
            IndexConfig(runtime="gevent")

    @pytest.mark.parametrize("kind", ["sim", "asyncio", "tcp"])
    def test_known_kinds_accepted(self, kind):
        assert IndexConfig(runtime=kind).runtime == kind

    def test_default_is_the_simulated_plane(self):
        assert IndexConfig().runtime == "sim"


class TestRepr:
    def test_repr_lists_every_field(self):
        """``repr`` is the one authoritative listing of the config
        surface: every declared field must appear with its value, so a
        field added later can never be invisible in logs."""
        config = IndexConfig(dims=3, runtime="asyncio", tracing=True)
        text = repr(config)
        assert text.startswith("IndexConfig(")
        for spec in fields(IndexConfig):
            assert f"{spec.name}={getattr(config, spec.name)!r}" in text

    def test_repr_round_trips_through_eval(self):
        config = IndexConfig(split_threshold=40, merge_threshold=20)
        assert eval(repr(config)) == config  # noqa: S307
