"""Tests for the simulated network transport."""

import pytest

from repro.common.errors import NodeUnreachableError
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.message import Message
from repro.net.simnet import RpcError, SimNetwork


class Echo:
    """Minimal RPC handler used throughout."""

    def __init__(self):
        self.seen = []

    def handle_rpc(self, message: Message):
        self.seen.append(message)
        args, kwargs = message.payload
        return ("echo", message.msg_type, args, kwargs)


class TestRegistration:
    def test_register_and_rpc(self):
        net = SimNetwork()
        net.register("b", Echo())
        result = net.rpc("a", "b", "ping", 1, flag=True)
        assert result == ("echo", "ping", (1,), {"flag": True})

    def test_duplicate_address_rejected(self):
        net = SimNetwork()
        net.register("a", Echo())
        with pytest.raises(NodeUnreachableError):
            net.register("a", Echo())

    def test_unregister_makes_unreachable(self):
        net = SimNetwork()
        net.register("b", Echo())
        net.unregister("b")
        with pytest.raises(RpcError):
            net.rpc("a", "b", "ping")

    def test_addresses_sorted(self):
        net = SimNetwork()
        for name in ("zeta", "alpha", "mid"):
            net.register(name, Echo())
        assert net.addresses() == ["alpha", "mid", "zeta"]


class TestAccounting:
    def test_messages_and_bytes_counted(self):
        import repro.core  # noqa: F401 (installs the codec wire model)
        from repro.dht.api import reply_wire_size

        net = SimNetwork()
        net.register("b", Echo())
        net.rpc("a", "b", "put", size_bytes=100)
        net.rpc("a", "b", "get")
        stats = net.stats.snapshot()
        assert stats["rpc_calls"] == 2
        assert stats["messages"] == 4  # request + reply each
        # Requests charge their declared size; replies are priced by
        # the installed codec model (an Echo reply is a plain envelope).
        echo_reply = ("echo", "put", (), {})
        assert stats["bytes_sent"] == 100 + 2 * reply_wire_size(echo_reply)
        assert stats["payload_bytes"] == 0  # no record-bearing payloads
        assert net.stats.per_type["put"] == 1

    def test_clock_advances_by_round_trip(self):
        net = SimNetwork(latency=ConstantLatency(2.0))
        net.register("b", Echo())
        net.rpc("a", "b", "ping")
        assert net.clock.now == 4.0

    def test_stats_reset(self):
        net = SimNetwork()
        net.register("b", Echo())
        net.rpc("a", "b", "ping")
        net.stats.reset()
        assert net.stats.snapshot()["messages"] == 0


class TestFaultInjection:
    def test_partition_blocks_both_ways(self):
        net = SimNetwork()
        net.register("a", Echo())
        net.register("b", Echo())
        net.partition({"a"}, {"b"})
        with pytest.raises(RpcError):
            net.rpc("a", "b", "ping")
        with pytest.raises(RpcError):
            net.rpc("b", "a", "ping")
        assert net.stats.dropped == 2

    def test_heal_partitions(self):
        net = SimNetwork()
        net.register("a", Echo())
        net.register("b", Echo())
        net.partition({"a"}, {"b"})
        net.heal_partitions()
        assert net.rpc("a", "b", "ping")[0] == "echo"

    def test_random_drops_deterministic(self):
        outcomes = []
        for _ in range(2):
            net = SimNetwork(drop_probability=0.5, seed=42)
            net.register("b", Echo())
            run = []
            for _ in range(20):
                try:
                    net.rpc("a", "b", "ping")
                    run.append(True)
                except RpcError:
                    run.append(False)
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_invalid_drop_probability(self):
        with pytest.raises(ValueError):
            SimNetwork(drop_probability=1.0)


class TestBroadcast:
    def test_reaches_all_but_sender(self):
        net = SimNetwork()
        handlers = {name: Echo() for name in ("a", "b", "c")}
        for name, handler in handlers.items():
            net.register(name, handler)
        delivered = net.broadcast("a", "gossip")
        assert delivered == 2
        assert not handlers["a"].seen
        assert handlers["b"].seen and handlers["c"].seen


class TestLatencyModels:
    def test_constant(self):
        assert ConstantLatency(3.0).delay("a", "b") == 3.0

    def test_uniform_range_and_determinism(self):
        first = UniformLatency(1.0, 2.0, seed=7)
        second = UniformLatency(1.0, 2.0, seed=7)
        draws_a = [first.delay("a", "b") for _ in range(50)]
        draws_b = [second.delay("a", "b") for _ in range(50)]
        assert draws_a == draws_b
        assert all(1.0 <= d <= 2.0 for d in draws_a)

    def test_uniform_invalid_range(self):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)
