"""Tests for the client leaf cache and the hinted lookup path.

Covers the LeafCache data structure itself, the one-probe warm hit,
honest metering of hint probes, and — the part that makes caching safe
— staleness: splits and merges (including cascading merges) performed
by *another* client between cached lookups must never produce a wrong
answer, only tightened fallback searches.
"""

import random
from dataclasses import replace

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.core.cache import LeafCache
from repro.core.index import MLightIndex
from repro.core.lookup import lookup_point
from repro.core.naming import moved_child, naming_function, survivor_child
from repro.dht.localhash import LocalDht
from tests.test_lookup import materialize_tree


def make_pair(cache_capacity=64, **overrides):
    """A writer (uncached) and a reader (cached) sharing one DHT."""
    defaults = dict(
        dims=2, max_depth=16, split_threshold=8, merge_threshold=4
    )
    defaults.update(overrides)
    config = IndexConfig(**defaults)
    dht = LocalDht(16)
    writer = MLightIndex(dht, config)
    reader = MLightIndex(
        dht, replace(config, cache_capacity=cache_capacity)
    )
    return writer, reader, dht


def cluster(rng, n, corner=0.0, side=0.12):
    """n random points inside one small square (forces deep splits)."""
    return [
        (corner + rng.random() * side, corner + rng.random() * side)
        for _ in range(n)
    ]


class TestLeafCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            LeafCache(0)

    def test_observe_and_contains(self):
        cache = LeafCache(4)
        cache.observe("0010")
        assert "0010" in cache
        assert "0011" not in cache
        assert len(cache) == 1

    def test_lru_eviction_drops_oldest(self):
        cache = LeafCache(2)
        cache.observe("0010")
        cache.observe("0011")
        cache.observe("0100")
        assert "0010" not in cache
        assert "0011" in cache and "0100" in cache

    def test_observe_refreshes_recency(self):
        cache = LeafCache(2)
        cache.observe("0010")
        cache.observe("0011")
        cache.observe("0010")  # refresh: 0011 is now the oldest
        cache.observe("0100")
        assert "0011" not in cache
        assert "0010" in cache

    def test_propose_refreshes_recency(self):
        cache = LeafCache(2)
        cache.observe("0010")
        cache.observe("0011")
        assert cache.propose("00101111", 3, 8) == "0010"
        cache.observe("0100")  # 0011 was the LRU entry now
        assert "0010" in cache
        assert "0011" not in cache

    def test_propose_returns_deepest_prefix(self):
        cache = LeafCache(8)
        cache.observe("001")
        cache.observe("00101")
        assert cache.propose("00101101", 3, 8) == "00101"

    def test_propose_respects_bounds(self):
        cache = LeafCache(8)
        cache.observe("00101")
        assert cache.propose("00101101", 6, 8) is None
        assert cache.propose("00101101", 3, 4) is None
        assert cache.propose("00101101", 5, 5) == "00101"

    def test_propose_ignores_non_prefixes(self):
        cache = LeafCache(8)
        cache.observe("00110")
        assert cache.propose("00101101", 3, 8) is None

    def test_generation_bump_invalidates_everything(self):
        cache = LeafCache(8)
        cache.observe("0010")
        cache.bump_generation()
        assert "0010" not in cache
        assert cache.propose("00101101", 3, 8) is None
        cache.observe("0010")  # observable again in the new generation
        assert "0010" in cache

    def test_forget_and_clear(self):
        cache = LeafCache(8)
        cache.observe("0010")
        cache.observe("0011")
        cache.forget("0010")
        assert "0010" not in cache and "0011" in cache
        cache.clear()
        assert len(cache) == 0


class TestHintedLookup:
    def test_warm_hit_costs_one_probe(self):
        writer, reader, dht = make_pair()
        rng = random.Random(1)
        for point in cluster(rng, 40):
            writer.insert(point)
        target = (0.05, 0.05)
        first = reader.lookup(target)
        assert first.bucket.covers(target)
        before = dht.stats.snapshot()
        second = reader.lookup(target)
        assert second.bucket.covers(target)
        assert second.lookups == 1
        assert dht.stats.lookups - before["lookups"] == 1
        assert dht.stats.cache_hits - before["cache_hits"] == 1

    def test_hint_probes_are_metered(self):
        """stats.lookups advances by exactly result.lookups — the hint
        probe is a paid DHT-get, never an oracle read."""
        writer, reader, dht = make_pair()
        rng = random.Random(2)
        points = cluster(rng, 60) + cluster(rng, 60, corner=0.5)
        for point in points:
            writer.insert(point)
        for point in rng.sample(points, 30):
            before = dht.stats.lookups
            result = reader.lookup(point)
            assert result.lookups >= 1
            assert dht.stats.lookups - before == result.lookups

    def test_every_lookup_tallies_one_outcome(self):
        writer, reader, dht = make_pair()
        rng = random.Random(3)
        points = cluster(rng, 50)
        for point in points:
            writer.insert(point)
        n = 40
        before = dht.stats.snapshot()
        for _ in range(n):
            reader.lookup(rng.choice(points))
        outcomes = (
            dht.stats.cache_hits
            + dht.stats.cache_stale
            + dht.stats.cache_misses
        ) - (
            before["cache_hits"]
            + before["cache_stale"]
            + before["cache_misses"]
        )
        assert outcomes == n

    def test_bump_generation_forces_misses(self):
        writer, reader, dht = make_pair()
        rng = random.Random(4)
        for point in cluster(rng, 40):
            writer.insert(point)
        target = (0.05, 0.05)
        reader.lookup(target)
        reader.cache.bump_generation()
        before = dht.stats.snapshot()
        result = reader.lookup(target)
        assert result.bucket.covers(target)
        assert dht.stats.cache_misses - before["cache_misses"] == 1
        assert dht.stats.cache_hits == before["cache_hits"]

    def test_single_client_cache_never_goes_stale(self):
        """A client that performs all its own splits and merges keeps
        its cache exact: split/merge hooks retire dead labels."""
        dht = LocalDht(16)
        config = IndexConfig(
            dims=2, max_depth=16, split_threshold=8,
            merge_threshold=4, cache_capacity=128,
        )
        index = MLightIndex(dht, config)
        rng = random.Random(5)
        points = cluster(rng, 80) + cluster(rng, 80, corner=0.6)
        for point in points:
            index.insert(point)
            index.lookup(rng.choice(points))
        for point in points[: len(points) // 2]:
            index.delete(point)
            index.lookup(rng.choice(points))
        assert dht.stats.cache_stale == 0
        index.check_invariants()


class TestStaleHints:
    """Hand-built trees: deterministic split/merge staleness."""

    def test_stale_hint_after_merge_probe_misses(self):
        """The cached leaf merged away and its name's key vanished:
        the probe misses, and the fallback still finds the parent.

        The *moved* child is the one whose key dies in a merge — the
        survivor's key is exactly where the merged parent now lives, so
        a survivor hint degrades into a legitimate one-probe hit.
        """
        dims, depth = 2, 10
        cache = LeafCache(8)
        dht_before = LocalDht(8)
        materialize_tree(["0010", "0011"], dims, dht_before)
        moved = moved_child("001", dims)
        point = covering_point(moved, dims)
        first = lookup_point(dht_before, point, dims, depth, cache=cache)
        assert first.bucket.label == moved
        assert moved in cache

        dht_after = LocalDht(8)  # both children merged into the root
        materialize_tree(["001"], dims, dht_after)
        before = dht_after.stats.snapshot()
        result = lookup_point(dht_after, point, dims, depth, cache=cache)
        assert result.bucket.label == "001"
        assert dht_after.stats.cache_stale - before["cache_stale"] == 1
        assert dht_after.stats.lookups - before["lookups"] == result.lookups
        assert moved not in cache  # retired by the stale probe
        assert "001" in cache  # the covering leaf was observed

    def test_survivor_hint_after_merge_degrades_to_hit(self):
        """A cached survivor child points at the very key the merged
        parent now occupies: one probe, covering bucket — a hit."""
        dims, depth = 2, 10
        cache = LeafCache(8)
        dht_before = LocalDht(8)
        materialize_tree(["0010", "0011"], dims, dht_before)
        survivor = survivor_child("001", dims)
        point = covering_point(survivor, dims)
        lookup_point(dht_before, point, dims, depth, cache=cache)
        assert survivor in cache

        dht_after = LocalDht(8)
        materialize_tree(["001"], dims, dht_after)
        before = dht_after.stats.snapshot()
        result = lookup_point(dht_after, point, dims, depth, cache=cache)
        assert result.bucket.label == "001"
        assert result.lookups == 1
        assert dht_after.stats.cache_hits - before["cache_hits"] == 1

    def test_stale_hint_after_split_probe_non_covering(self):
        """The cached leaf split: fmd(hint) is internal, the probe
        returns its named (non-covering) leaf, and the tightened
        fallback finds the right child."""
        dims, depth = 2, 10
        cache = LeafCache(8)
        dht_before = LocalDht(8)
        materialize_tree(["0010", "0011"], dims, dht_before)
        point = (0.1, 0.1)
        first = lookup_point(dht_before, point, dims, depth, cache=cache)
        split_label = first.bucket.label

        children = [split_label + "0", split_label + "1"]
        other = [lf for lf in ["0010", "0011"] if lf != split_label]
        leaves_after = children + other
        survivor = next(
            leaf for leaf in children
            if naming_function(leaf, dims)
            == naming_function(split_label, dims)
        )
        non_survivor = next(c for c in children if c != survivor)
        dht_after = LocalDht(8)
        materialize_tree(leaves_after, dims, dht_after)
        # A point inside the non-survivor child: the hinted probe hits
        # the survivor, which cannot cover it -> guaranteed stale.
        target = covering_point(non_survivor, dims)
        lookup_point(dht_before, target, dims, depth, cache=cache)
        before = dht_after.stats.snapshot()
        result = lookup_point(dht_after, target, dims, depth, cache=cache)
        assert result.bucket.label == non_survivor
        assert dht_after.stats.cache_stale - before["cache_stale"] == 1
        assert dht_after.stats.lookups - before["lookups"] == result.lookups
        assert survivor in cache  # the stale probe still taught us a leaf


def covering_point(label, dims):
    """The center of the cell of *label* (a point it must cover)."""
    from repro.common.geometry import region_of_label

    region = region_of_label(label, dims)
    return tuple(
        (low + high) / 2 for low, high in zip(region.lows, region.highs)
    )


class TestSharedDhtChurn:
    """Two index clients on one DHT: the writer churns the tree, the
    reader keeps looking up through a (now stale) cache."""

    def test_reader_correct_across_writer_splits(self):
        writer, reader, dht = make_pair()
        rng = random.Random(6)
        seed_points = cluster(rng, 6)
        for point in seed_points:
            writer.insert(point)
        for point in seed_points:
            reader.lookup(point)  # cache the shallow tree
        for point in cluster(rng, 120):  # deep splits in the region
            writer.insert(point)
        for point in seed_points:
            result = reader.lookup(point)
            assert result.bucket.covers(point)
        writer.check_invariants()

    def test_reader_correct_across_writer_merges(self):
        writer, reader, dht = make_pair()
        rng = random.Random(7)
        points = cluster(rng, 120)
        for point in points:
            writer.insert(point)
        for point in points[:20]:
            reader.lookup(point)  # cache deep leaves
        for point in points[:110]:  # cascading merges back up
            assert writer.delete(point)
        for point in points[110:]:
            result = reader.lookup(point)
            assert result.bucket.covers(point)
        writer.check_invariants()

    def test_reader_correct_across_cascading_merge_to_root(self):
        writer, reader, dht = make_pair(split_threshold=4,
                                        merge_threshold=2)
        rng = random.Random(8)
        points = cluster(rng, 40, side=0.05)
        for point in points:
            writer.insert(point)
        for point in points:
            reader.lookup(point)
        survivors = points[-2:]
        for point in points[:-2]:
            assert writer.delete(point)
        writer.check_invariants()
        for point in survivors:
            result = reader.lookup(point)
            assert result.bucket.covers(point)

    def test_staleness_is_observed_and_survivable(self):
        """Across heavy churn the reader must see at least one stale
        hint — and every answer must still be the covering leaf."""
        writer, reader, dht = make_pair()
        rng = random.Random(9)
        points = cluster(rng, 100)
        for point in points[:10]:
            writer.insert(point)
        for point in points[:10]:
            reader.lookup(point)
        for point in points[10:]:
            writer.insert(point)
        for point in points:
            result = reader.lookup(point)
            assert result.bucket.covers(point)
        assert dht.stats.cache_stale > 0

    @pytest.mark.parametrize("seed", range(5))
    def test_random_churn_property(self, seed):
        """Random interleaving of writer inserts/deletes and cached
        reader lookups: every lookup answers correctly, metering never
        under-counts, and the tree invariants hold throughout."""
        writer, reader, dht = make_pair(split_threshold=6,
                                        merge_threshold=3)
        rng = random.Random(seed)
        live = []
        for _ in range(250):
            action = rng.random()
            if action < 0.5 or not live:
                point = (rng.random() * 0.3, rng.random() * 0.3)
                writer.insert(point)
                live.append(point)
            elif action < 0.75:
                victim = live.pop(rng.randrange(len(live)))
                assert writer.delete(victim)
            else:
                target = rng.choice(live)
                before = dht.stats.lookups
                result = reader.lookup(target)
                assert result.bucket.covers(target)
                assert dht.stats.lookups - before == result.lookups
        writer.check_invariants()


class TestProactiveInvalidation:
    """Satellite fix: a *subscribed* reader's cache hears about merges
    when they happen, not when a probe fails.

    Without a subscription, a hint for a merged-away leaf survives in
    the cache until the next lookup pays a wasted probe
    (``cache_stale``).  The dissemination plane's re-homing
    notifications forget dead labels and observe born ones proactively,
    so the subscribed reader performs **zero** stale-hint probes across
    the same churn.
    """

    REGION = ((0.0, 0.0), (0.25, 0.25))

    def churn(self, subscribe):
        from repro.common.geometry import as_region
        from repro.mcast import ContinuousQueryPlane

        writer, reader, dht = make_pair()
        plane = ContinuousQueryPlane(writer)
        rng = random.Random(9)
        points = cluster(rng, 120)
        for point in points:
            writer.insert(point)
        if subscribe:
            plane.subscribe(as_region(self.REGION), cache=reader.cache)
        for point in points[:20]:
            reader.lookup(point)  # cache deep leaves
        for point in points[:110]:  # cascading merges back up
            assert writer.delete(point)
        before = dht.stats.snapshot()
        for point in points[110:]:
            result = reader.lookup(point)
            assert result.bucket.covers(point)
        writer.check_invariants()
        return dht.stats.cache_stale - before["cache_stale"]

    def test_unsubscribed_reader_pays_stale_probes(self):
        """Control: the very churn the fix addresses really does
        produce stale-hint probes without notifications."""
        assert self.churn(subscribe=False) > 0

    def test_subscribed_reader_makes_zero_stale_probes(self):
        assert self.churn(subscribe=True) == 0

    def test_notifications_rewrite_hints_to_live_labels(self):
        """After a split, the reader's cache holds the born children
        (deep, usable hints), not the dead origin."""
        from repro.common.geometry import as_region
        from repro.mcast import ContinuousQueryPlane

        writer, reader, dht = make_pair()
        plane = ContinuousQueryPlane(writer)
        rng = random.Random(10)
        seeds = cluster(rng, 6)
        for point in seeds:
            writer.insert(point)
        subscriber = plane.subscribe(
            as_region(self.REGION), cache=reader.cache
        )
        for point in seeds:
            reader.lookup(point)
        for point in cluster(rng, 120):
            writer.insert(point)  # deep splits in the region
        assert subscriber.invalidations
        dead = {
            label
            for invalidation in subscriber.invalidations
            for label in invalidation[0]
        }
        born = {
            label
            for invalidation in subscriber.invalidations
            for label in invalidation[1]
        }
        # Dead labels that never came back must be out of the cache.
        for label in dead - born:
            assert label not in reader.cache
        before = dht.stats.snapshot()
        for point in seeds:
            assert reader.lookup(point).bucket.covers(point)
        assert dht.stats.cache_stale - before["cache_stale"] == 0
