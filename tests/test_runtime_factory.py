"""The runtime-neutral construction surface.

``repro.runtime.create_dht`` is the one place substrates are built;
these tests pin its dispatch table, its validation, and the
deprecated top-level aliases it replaces.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.common.errors import ReproError, UnknownRuntimeError
from repro.dht.chord import ChordDht
from repro.dht.kademlia import KademliaDht
from repro.dht.localhash import LocalDht
from repro.dht.pastry import PastryDht
from repro.runtime import (
    RuntimeConfig,
    create_dht,
    register_runtime,
    runtime_kinds,
)
from repro.service.node import ServiceDht


class TestFactoryDispatch:
    @pytest.mark.parametrize(
        "overlay,expected",
        [
            ("local", LocalDht),
            ("chord", ChordDht),
            ("kademlia", KademliaDht),
            ("pastry", PastryDht),
        ],
    )
    def test_sim_overlays(self, overlay, expected):
        dht = create_dht(RuntimeConfig(kind="sim", overlay=overlay,
                                       n_peers=4))
        assert isinstance(dht, expected)
        assert len(dht.peers()) == 4

    @pytest.mark.parametrize("kind", ["asyncio", "tcp"])
    def test_service_kinds(self, kind):
        with create_dht(kind=kind, n_peers=3) as dht:
            assert isinstance(dht, ServiceDht)
            assert len(dht.peers()) == 3

    def test_keyword_overrides_merge_over_config(self):
        base = RuntimeConfig(kind="sim", overlay="local", n_peers=4)
        dht = create_dht(base, n_peers=6)
        assert len(dht.peers()) == 6

    def test_factory_placement_matches_direct_construction(self):
        """The factory must be a pure re-routing: the substrate it
        builds is behaviourally the one the old constructor built."""
        factory = create_dht(kind="sim", overlay="local", n_peers=16)
        direct = LocalDht(16)
        for key in ("a", "leaf-00101", "z" * 30):
            assert factory.peer_of(key) == direct.peer_of(key)

    def test_replication_and_virtual_nodes_reach_the_substrate(self):
        chord = create_dht(
            RuntimeConfig(kind="sim", overlay="chord", n_peers=4,
                          replication=2)
        )
        assert chord.replication == 2
        local = create_dht(
            RuntimeConfig(kind="sim", overlay="local", n_peers=4,
                          virtual_nodes=8)
        )
        assert len(local.peers()) == 4

    def test_registry_is_extensible(self):
        sentinel = LocalDht(1)
        register_runtime("inmem-test", lambda config: sentinel)
        try:
            assert create_dht(kind="inmem-test") is sentinel
            assert "inmem-test" in runtime_kinds()
        finally:
            import repro.runtime as runtime_module

            runtime_module._RUNTIMES.pop("inmem-test")


class TestRuntimeConfigValidation:
    def test_unknown_kind_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown runtime kind"):
            create_dht(kind="threads")

    def test_unknown_kind_is_also_a_repro_error(self):
        with pytest.raises(UnknownRuntimeError):
            create_dht(kind="threads")
        assert issubclass(UnknownRuntimeError, ReproError)
        assert issubclass(UnknownRuntimeError, ValueError)

    def test_unknown_overlay_rejected(self):
        with pytest.raises(ValueError, match="unknown overlay"):
            RuntimeConfig(overlay="can")

    def test_numeric_bounds(self):
        with pytest.raises(ReproError):
            RuntimeConfig(n_peers=0)
        with pytest.raises(ReproError):
            RuntimeConfig(virtual_nodes=0)
        with pytest.raises(ReproError):
            RuntimeConfig(replication=0)

    def test_incompatible_combinations_rejected(self):
        with pytest.raises(ReproError, match="virtual_nodes"):
            RuntimeConfig(overlay="chord", virtual_nodes=4)
        with pytest.raises(ReproError, match="replication"):
            RuntimeConfig(overlay="pastry", replication=2)


class TestDeprecatedAliases:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("LocalDht", LocalDht),
            ("ChordDht", ChordDht),
            ("KademliaDht", KademliaDht),
            ("PastryDht", PastryDht),
        ],
    )
    def test_alias_warns_and_is_the_same_class(self, name, expected):
        with pytest.warns(DeprecationWarning, match="create_dht"):
            alias = getattr(repro, name)
        assert alias is expected

    def test_aliases_stay_in_the_public_surface(self):
        for name in ("LocalDht", "ChordDht", "KademliaDht", "PastryDht"):
            assert name in repro.__all__

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.NoSuchThing  # noqa: B018

    def test_supported_surface_warns_nothing(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            dht = repro.create_dht(repro.RuntimeConfig(n_peers=2))
        assert isinstance(dht, LocalDht)
