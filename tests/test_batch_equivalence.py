"""Batched vs sequential execution-plane equivalence.

The round-batched plane is a *latency* optimisation: answers and the
paper's bandwidth meters (lookups, gets, puts, records moved) must be
bit-identical to the sequential reference on every substrate; only the
round structure — ``batch_rounds``, simulated network rounds, the
virtual clock — may differ.  These tests pin that contract, plus the
derived-rounds property (every issued batch is exactly one simulated
message round) and the partial-failure retry semantics of batches.
"""

import random

import pytest

from repro.common.config import IndexConfig
from repro.common.geometry import Region
from repro.core.bucket import LeafBucket
from repro.core.bulkload import bulk_load
from repro.core.index import MLightIndex
from repro.core.keys import bucket_key
from repro.core.naming import naming_function
from repro.core.rangequery import RangeQueryEngine
from repro.core.records import Record
from repro.dht.chord import ChordDht
from repro.dht.kademlia import KademliaDht
from repro.dht.localhash import LocalDht
from repro.dht.pastry import PastryDht
from repro.dht.retry import RetryingDht
from repro.net.simnet import RpcError, SimNetwork
from tests.conftest import brute_force_range, random_tree_leaves
from tests.test_rangequery import random_query

#: Counters allowed to differ between the planes: the batched plane
#: issues rounds, the sequential one never does.
ROUND_ONLY_KEYS = {"batch_rounds", "batch_ops"}

SUBSTRATES = [
    ("local", lambda: LocalDht(16)),
    ("chord", lambda: ChordDht.build(10)),
    ("pastry", lambda: PastryDht.build(10)),
    ("kademlia", lambda: KademliaDht.build(10)),
    ("retrying-local", lambda: RetryingDht(LocalDht(16))),
]


def populate_tree(dht, seed, dims=2, max_depth=10, n_points=200):
    """Place the same random tree and records on any substrate.

    A fixed *seed* makes two substrates carry bit-identical trees, so
    their engines can be compared probe for probe.
    """
    rng = random.Random(seed)
    leaves = random_tree_leaves(rng, dims, max_depth)
    buckets = {leaf: LeafBucket(leaf, dims) for leaf in leaves}
    regions = {leaf: bucket.region for leaf, bucket in buckets.items()}
    points = []
    for _ in range(n_points):
        point = tuple(rng.random() for _ in range(dims))
        points.append(point)
        for leaf, region in regions.items():
            if region.contains_point(point):
                buckets[leaf].add(Record(point))
                break
    for leaf, bucket in buckets.items():
        dht.put(bucket_key(naming_function(leaf, dims)), bucket)
    return points


def snapshot_delta(stats, before):
    after = stats.snapshot()
    return {key: after[key] - before[key] for key in after}


class TestPlaneEquivalence:
    @pytest.mark.parametrize(
        "name,factory", SUBSTRATES, ids=[name for name, _ in SUBSTRATES]
    )
    @pytest.mark.parametrize("lookahead", [1, 4])
    def test_same_answers_and_meters_on_every_substrate(
        self, name, factory, lookahead
    ):
        """Identical substrates, one engine per plane: every query must
        agree on records, visited leaves, lookups, rounds, and on the
        substrate-level meter deltas (batch counters excepted)."""
        batched_dht, sequential_dht = factory(), factory()
        points = populate_tree(batched_dht, seed=17)
        populate_tree(sequential_dht, seed=17)
        batched = RangeQueryEngine(batched_dht, 2, 10, batched=True)
        sequential = RangeQueryEngine(sequential_dht, 2, 10, batched=False)

        rng = random.Random(3)
        for _ in range(6):
            query = random_query(rng, 2)
            before_b = batched_dht.stats.snapshot()
            before_s = sequential_dht.stats.snapshot()
            result_b = batched.query(query, lookahead)
            result_s = sequential.query(query, lookahead)

            expected = brute_force_range(points, query)
            assert sorted(r.key for r in result_b.records) == expected
            assert sorted(r.key for r in result_s.records) == expected
            assert result_b.visited_leaves == result_s.visited_leaves
            assert result_b.lookups == result_s.lookups
            assert result_b.rounds == result_s.rounds

            delta_b = snapshot_delta(batched_dht.stats, before_b)
            delta_s = snapshot_delta(sequential_dht.stats, before_s)
            for key in delta_b:
                if key in ROUND_ONLY_KEYS:
                    continue
                assert delta_b[key] == delta_s[key], key
            assert result_b.batch_rounds == delta_b["batch_rounds"] > 0
            assert result_s.batch_rounds == delta_s["batch_rounds"] == 0

    def test_index_maintenance_equivalent_across_planes(self):
        """Inserting through the index (splits included) produces the
        same tree and the same bandwidth meters on either plane."""
        rng = random.Random(23)
        points = [(rng.random(), rng.random()) for _ in range(300)]
        config = dict(
            dims=2, max_depth=12, split_threshold=10, merge_threshold=5
        )
        indexes = {
            plane: MLightIndex(
                LocalDht(16), IndexConfig(execution=plane, **config)
            )
            for plane in ("batched", "sequential")
        }
        for index in indexes.values():
            index.insert_many(points)
            index.check_invariants()

        batched, sequential = (
            indexes["batched"], indexes["sequential"]
        )
        assert sorted(b.label for b in batched.buckets()) == sorted(
            b.label for b in sequential.buckets()
        )
        for key in batched.dht.stats.snapshot():
            if key in ROUND_ONLY_KEYS:
                continue
            assert (
                batched.dht.stats.snapshot()[key]
                == sequential.dht.stats.snapshot()[key]
            ), key

        query = Region((0.1, 0.1), (0.8, 0.8))
        expected = brute_force_range(points, query)
        for index in indexes.values():
            got = sorted(r.key for r in index.range_query(query).records)
            assert got == expected

    def test_bulk_load_equivalent_across_planes(self):
        rng = random.Random(9)
        points = [(rng.random(), rng.random()) for _ in range(400)]
        placements = {}
        stats = {}
        for plane in ("batched", "sequential"):
            dht = LocalDht(16)
            config = IndexConfig(
                dims=2, max_depth=12, split_threshold=20,
                merge_threshold=10, execution=plane,
            )
            placements[plane] = bulk_load(dht, points, config)
            stats[plane] = dht.stats.snapshot()
        assert placements["batched"] == placements["sequential"]
        for key, value in stats["batched"].items():
            if key in ROUND_ONLY_KEYS:
                continue
            assert value == stats["sequential"][key], key
        assert stats["batched"]["batch_rounds"] == 1
        assert stats["sequential"]["batch_rounds"] == 0


class TestDerivedRounds:
    def test_batches_are_message_rounds_on_routed_substrate(self):
        """Property: on a routed overlay, every issued batch is exactly
        one simulated message round, so the batch counter and the
        network's round counter move in lockstep — rounds are derived
        from issuance, not hand-counted."""
        dht = ChordDht.build(10)
        populate_tree(dht, seed=29, max_depth=10, n_points=150)
        engine = RangeQueryEngine(dht, 2, 10, batched=True)
        network = dht.network

        rng = random.Random(31)
        for lookahead in (1, 2, 4):
            query = random_query(rng, 2)
            batches_before = dht.stats.batch_rounds
            net_rounds_before = network.stats.rounds
            latency_before = network.stats.critical_path_latency
            clock_before = network.clock.now
            result = engine.query(query, lookahead)

            issued = dht.stats.batch_rounds - batches_before
            observed = network.stats.rounds - net_rounds_before
            # The result's latency measure IS the issuance structure:
            # one builder round per engine iteration, one get_many per
            # iteration, one simulated message round per get_many.
            assert result.rounds == issued == observed > 0
            # During a batched query every RPC rides a round, so the
            # clock advanced by exactly the accumulated critical paths.
            assert network.clock.now - clock_before == pytest.approx(
                network.stats.critical_path_latency - latency_before
            )

    def test_lookahead_cuts_simulated_latency(self):
        """Fig. 7's premise made observable: with latency charged per
        round (not per probe), lookahead=4 finishes the same query in
        less simulated time than lookahead=1."""
        dht = ChordDht.build(10)
        rng = random.Random(11)
        leaves = random_tree_leaves(rng, 2, 12)
        buckets = {leaf: LeafBucket(leaf, 2) for leaf in leaves}
        for _ in range(2000):
            point = (rng.random(), rng.random())
            for leaf, bucket in buckets.items():
                if bucket.region.contains_point(point):
                    bucket.add(Record(point))
                    break
        for leaf, bucket in buckets.items():
            dht.put(bucket_key(naming_function(leaf, 2)), bucket)
        engine = RangeQueryEngine(dht, 2, 12, batched=True)
        query = Region((0.05, 0.05), (0.85, 0.85))

        elapsed = {}
        for lookahead in (1, 4):
            start = dht.network.clock.now
            engine.query(query, lookahead)
            elapsed[lookahead] = dht.network.clock.now - start
        assert elapsed[4] < elapsed[1]


class FlakyBatchDht(LocalDht):
    """LocalDht whose armed keys fail a fixed number of wire ops."""

    def __init__(self):
        super().__init__(8)
        self._budget: dict[str, int] = {}

    def arm(self, keys, failures=1):
        for key in keys:
            self._budget[key] = failures

    def _maybe_fail(self, key):
        if self._budget.get(key, 0) > 0:
            self._budget[key] -= 1
            raise RpcError(f"injected failure for {key!r}")

    def _do_get(self, key):
        self._maybe_fail(key)
        return super()._do_get(key)

    def _do_put(self, key, value):
        self._maybe_fail(key)
        super()._do_put(key, value)

    def _do_lookup(self, key):
        self._maybe_fail(key)
        return super()._do_lookup(key)


class TestBatchRetries:
    def test_facade_surfaces_first_batch_failure(self):
        dht = FlakyBatchDht()
        for index in range(4):
            dht.put(f"k{index}", index)
        dht.arm(["k1"])
        with pytest.raises(RpcError):
            dht.get_many([f"k{index}" for index in range(4)])

    def test_retries_only_the_failed_subset(self):
        dht = FlakyBatchDht()
        for index in range(4):
            dht.put(f"k{index}", index)
        dht.stats.reset()
        dht.arm(["k1", "k3"])
        wrapped = RetryingDht(dht, attempts=3)
        assert wrapped.get_many([f"k{index}" for index in range(4)]) == [
            0, 1, 2, 3,
        ]
        # First round carried 4 elements, the retry round only the two
        # failed ones — each metered as a real lookup.
        assert dht.stats.lookups == 6
        assert dht.stats.gets == 6
        assert dht.stats.batch_rounds == 2
        assert dht.stats.batch_ops == 6
        assert dht.stats.retries == 2
        assert dht.stats.batch_retries == 2
        assert wrapped.retries == 2

    def test_put_many_remeters_retried_transfers(self):
        dht = FlakyBatchDht()
        wrapped = RetryingDht(dht, attempts=3)
        dht.arm(["b"])
        wrapped.put_many(
            [("a", 1), ("b", 2), ("c", 3), ("d", 4)],
            records_moved=[1, 2, 3, 4],
        )
        assert dht.peek("b") == 2
        # 10 records in the first round plus 2 for the retried element.
        assert dht.stats.records_moved == 12
        assert dht.stats.puts == 5
        assert dht.stats.batch_retries == 1

    def test_gives_up_after_attempts(self):
        dht = FlakyBatchDht()
        for index in range(4):
            dht.put(f"k{index}", index)
        dht.stats.reset()
        dht.arm(["k2"], failures=10)
        wrapped = RetryingDht(dht, attempts=2)
        with pytest.raises(RpcError):
            wrapped.get_many([f"k{index}" for index in range(4)])
        # One full round plus one single-element retry round.
        assert dht.stats.lookups == 5
        assert dht.stats.batch_retries == 1

    def test_lookup_many_retries(self):
        dht = FlakyBatchDht()
        wrapped = RetryingDht(dht, attempts=3)
        dht.arm(["x"])
        owners = wrapped.lookup_many(["w", "x", "y", "z"])
        assert owners == [dht.peer_of(key) for key in ["w", "x", "y", "z"]]
        assert dht.stats.batch_retries == 1


class TestBatchMetering:
    def test_get_many_meters_like_individual_gets(self):
        """One batch costs exactly what its elements cost sequentially;
        only the round counters differ — bandwidth is never batched."""
        batched, sequential = LocalDht(8), LocalDht(8)
        for index in range(6):
            batched.put(f"k{index}", index)
            sequential.put(f"k{index}", index)
        keys = [f"k{index}" for index in range(6)]
        assert batched.get_many(keys) == [
            sequential.get(key) for key in keys
        ]
        for key in ("lookups", "gets", "puts", "records_moved"):
            assert (
                batched.stats.snapshot()[key]
                == sequential.stats.snapshot()[key]
            ), key
        assert batched.stats.batch_rounds == 1
        assert batched.stats.batch_ops == 6

    def test_empty_batches_are_free(self):
        dht = LocalDht(8)
        assert dht.get_many([]) == []
        assert dht.lookup_many([]) == []
        dht.put_many([])
        assert dht.stats.batch_rounds == 0
        assert dht.stats.lookups == 0

    def test_broadcast_round_advances_clock_once(self):
        network = SimNetwork()

        class Echo:
            def handle_rpc(self, message):
                return message.msg_type

        network.register("a", Echo())
        network.register("b", Echo())
        network.register("c", Echo())
        results = network.broadcast_round(
            "a", [("b", "ping"), ("c", "ping")]
        )
        assert results == ["ping", "ping"]
        # Two parallel deliveries, one round: the clock advanced by the
        # slowest single round trip, not the sum of both.
        assert network.clock.now == 2.0
        assert network.stats.rounds == 1
        assert network.stats.max_round_fanout == 2
