"""Tests for the dissemination plane: prefix multicast + continuous
range queries.

The headline properties:

* multicast returns the same answers at the same metered costs as
  client fan-out — across all three overlays, both execution planes,
  and both the simulated and the asyncio service runtimes — while the
  initiator originates exactly **one** message per query;
* a continuous query keeps delivering through splits, merges, and (on
  a durable ring) a crash-restart cycle, each matching insert exactly
  once.
"""

import random
import tempfile

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import NodeUnreachableError, ReproError
from repro.common.geometry import Region, region_of_label
from repro.core.distributed import DistributedQueryRuntime
from repro.core.index import MLightIndex
from repro.core.naming import naming_function
from repro.dht.chord import ChordDht
from repro.dht.kademlia import KademliaDht
from repro.dht.localhash import LocalDht
from repro.dht.pastry import PastryDht
from repro.mcast import (
    MCAST_SUFFIX,
    ContinuousQueryPlane,
    MulticastRuntime,
    ServiceContinuousPlane,
    ServiceMulticast,
    sub_key,
)
from repro.runtime import create_dht
from tests.conftest import brute_force_range

CONFIG = IndexConfig(
    dims=2, max_depth=14, split_threshold=10, merge_threshold=5
)

#: Stat counters allowed to differ between fan-out and multicast:
#: ``hops`` (route length depends on the routing start position) and
#: the multicast-only meters.
EXCLUDED = ("hops", "mcasts", "mcast_forwards")

OVERLAYS = [
    ("chord", lambda: ChordDht.build(10)),
    ("kademlia", lambda: KademliaDht.build(10)),
    ("pastry", lambda: PastryDht.build(10)),
]


def build_over(dht, n_points=250, seed=0, config=CONFIG):
    index = MLightIndex(dht, config)
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n_points)]
    for point in points:
        index.insert(point)
    return index, points


def random_queries(seed, count=6):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        lows = (rng.random() * 0.7, rng.random() * 0.7)
        highs = (
            lows[0] + rng.random() * 0.3, lows[1] + rng.random() * 0.3
        )
        queries.append(Region(lows, highs))
    return queries


def comparable(snapshot):
    return {k: v for k, v in snapshot.items() if k not in EXCLUDED}


class TestMulticastEquivalence:
    """Multicast == fan-out == engine, answer for answer, cost for
    cost, on every simulated overlay."""

    @pytest.mark.parametrize(
        "factory", [f for _, f in OVERLAYS], ids=[n for n, _ in OVERLAYS]
    )
    def test_matches_fanout_on_every_meter(self, factory):
        dht = factory()
        index, points = build_over(dht)
        fanout = DistributedQueryRuntime(dht, 2, CONFIG.max_depth)
        mcast = MulticastRuntime(dht, 2, CONFIG.max_depth)
        for query in random_queries(3):
            before = dht.stats.snapshot()
            fan_result = fanout.query(query)
            mid = dht.stats.snapshot()
            mc_result = mcast.query(query)
            after = dht.stats.snapshot()
            fan_delta = {k: mid[k] - before[k] for k in before}
            mc_delta = {k: after[k] - mid[k] for k in before}
            assert sorted(r.key for r in mc_result.records) == sorted(
                r.key for r in fan_result.records
            )
            assert mc_result.visited_leaves == fan_result.visited_leaves
            assert mc_result.rounds == fan_result.rounds
            assert comparable(mc_delta) == comparable(fan_delta)

    @pytest.mark.parametrize(
        "factory", [f for _, f in OVERLAYS], ids=[n for n, _ in OVERLAYS]
    )
    def test_matches_brute_force(self, factory):
        dht = factory()
        index, points = build_over(dht, seed=4)
        mcast = MulticastRuntime(dht, 2, CONFIG.max_depth)
        for query in random_queries(5):
            result = mcast.query(query)
            assert sorted(r.key for r in result.records) == (
                brute_force_range(points, query)
            )

    @pytest.mark.parametrize("execution", ["batched", "sequential"])
    def test_matches_engine_on_both_execution_planes(self, execution):
        config = IndexConfig(
            dims=2, max_depth=14, split_threshold=10, merge_threshold=5,
            execution=execution,
        )
        dht = ChordDht.build(10)
        index, points = build_over(dht, config=config)
        mcast = MulticastRuntime(dht, 2, config.max_depth)
        for query in random_queries(7):
            engine_result = index.range_query(query)
            mc_result = mcast.query(query)
            assert sorted(r.key for r in mc_result.records) == sorted(
                r.key for r in engine_result.records
            )
            assert (
                mc_result.visited_leaves == engine_result.visited_leaves
            )
            assert mc_result.lookups == engine_result.lookups
            assert mc_result.rounds == engine_result.rounds

    def test_agents_coexist_with_fanout_agents(self):
        dht = ChordDht.build(6)
        build_over(dht, n_points=40)
        DistributedQueryRuntime(dht, 2, CONFIG.max_depth)
        MulticastRuntime(dht, 2, CONFIG.max_depth)
        for peer in dht.peers():
            assert dht.network.is_registered(peer + MCAST_SUFFIX)

    def test_localdht_rejected(self):
        with pytest.raises(ReproError):
            MulticastRuntime(LocalDht(8), 2, 14)


class TestInitiatorMessages:
    """The tentpole bound: O(1) initiator-originated messages."""

    @pytest.mark.parametrize(
        "factory", [f for _, f in OVERLAYS], ids=[n for n, _ in OVERLAYS]
    )
    def test_one_initiator_message_per_query(self, factory):
        dht = factory()
        index, points = build_over(dht)
        mcast = MulticastRuntime(dht, 2, CONFIG.max_depth)
        query = Region((0.0, 0.0), (1.0, 1.0))
        before = dht.stats.snapshot()
        result = mcast.query(query)
        delta = {
            k: v - before[k] for k, v in dht.stats.snapshot().items()
        }
        # One initiator-originated message; every DHT-lookup the query
        # performed originated at a *peer* (a native forward), so the
        # fan-out's O(#branches) client messages collapse to O(1).
        assert delta["mcasts"] == 1
        assert delta["mcast_forwards"] == delta["lookups"]
        assert delta["lookups"] == len(result.visited_leaves)
        assert delta["lookups"] > 1  # the bound is non-vacuous

    def test_fanout_originates_one_message_per_branch(self):
        """The baseline the tentpole improves on: client fan-out pays
        one client-originated resolution per visited node."""
        dht = ChordDht.build(10)
        index, points = build_over(dht)
        fanout = DistributedQueryRuntime(dht, 2, CONFIG.max_depth)
        query = Region((0.0, 0.0), (1.0, 1.0))
        before = dht.stats.snapshot()
        result = fanout.query(query)
        delta = {
            k: v - before[k] for k, v in dht.stats.snapshot().items()
        }
        assert delta["mcasts"] == 0
        assert delta["mcast_forwards"] == 0
        assert delta["lookups"] == len(result.visited_leaves) > 1


class TestServiceMulticast:
    """The same equivalence spoken as MCAST wire frames."""

    @pytest.mark.parametrize("kind", ["asyncio", "tcp"])
    def test_matches_engine_over_the_service_runtime(self, kind):
        with create_dht(kind=kind, n_peers=8) as dht:
            index, points = build_over(dht, n_points=200)
            mcast = ServiceMulticast(dht, 2, CONFIG.max_depth)
            for query in random_queries(9, count=4):
                engine_result = index.range_query(query)
                mc_result = mcast.query(query)
                assert sorted(
                    r.key for r in mc_result.records
                ) == sorted(r.key for r in engine_result.records)
                assert (
                    mc_result.visited_leaves
                    == engine_result.visited_leaves
                )
                assert mc_result.lookups == engine_result.lookups
                assert mc_result.rounds == engine_result.rounds

    def test_one_initiator_frame(self):
        with create_dht(kind="asyncio", n_peers=8) as dht:
            index, points = build_over(dht, n_points=200)
            mcast = ServiceMulticast(dht, 2, CONFIG.max_depth)
            before = dht.stats.snapshot()
            result = mcast.query(Region((0.0, 0.0), (1.0, 1.0)))
            delta = {
                k: v - before[k]
                for k, v in dht.stats.snapshot().items()
            }
            assert delta["mcasts"] == 1
            assert delta["mcast_forwards"] == delta["lookups"]
            assert delta["lookups"] == len(result.visited_leaves) > 1

    def test_simulated_substrates_rejected(self):
        dht = ChordDht.build(4)
        with pytest.raises(ReproError):
            ServiceMulticast(dht, 2, 14)


REGION = Region((0.2, 0.2), (0.7, 0.7))


def in_region(points):
    return sorted(p for p in points if REGION.contains_point_closed(p))


class TestContinuousQueries:
    """Subscribe once; matching inserts arrive exactly once, through
    splits, merges, and churn."""

    def test_delivery_through_splits(self):
        dht = ChordDht.build(8)
        index, points = build_over(dht, n_points=60, seed=11)
        plane = ContinuousQueryPlane(index)
        subscriber = plane.subscribe(REGION)
        rng = random.Random(12)
        batch = [(rng.random(), rng.random()) for _ in range(120)]
        for point in batch:
            index.insert(point)
        assert sorted(subscriber.delivered_keys) == in_region(batch)
        # No duplicates even where split re-homing copied an entry
        # into both children.
        assert len(subscriber.delivered_keys) == len(
            set(subscriber.delivered_keys)
        )

    def test_delivery_through_merges(self):
        dht = ChordDht.build(8)
        index, points = build_over(dht, n_points=200, seed=13)
        plane = ContinuousQueryPlane(index)
        subscriber = plane.subscribe(REGION)
        for point in points[40:]:
            index.delete(point)
        assert subscriber.invalidations  # merges notified proactively
        extra = [(0.31, 0.33), (0.55, 0.61), (0.05, 0.95)]
        for point in extra:
            index.insert(point)
        assert sorted(subscriber.delivered_keys) == in_region(extra)

    def test_unsubscribe_stops_delivery(self):
        dht = ChordDht.build(8)
        index, points = build_over(dht, n_points=60, seed=14)
        plane = ContinuousQueryPlane(index)
        subscriber = plane.subscribe(REGION)
        plane.unsubscribe(subscriber)
        index.insert((0.5, 0.5))
        assert subscriber.delivered_keys == []

    def test_subscribe_meters_and_covered_set(self):
        dht = ChordDht.build(8)
        index, points = build_over(dht, n_points=80, seed=15)
        plane = ContinuousQueryPlane(index)
        before = dht.stats.subscribes
        plane.subscribe(REGION)
        assert dht.stats.subscribes == before + 1
        assert plane.covered
        from repro.common.geometry import query_overlaps_cell

        for label in plane.covered:
            cell = region_of_label(label, 2)
            assert query_overlaps_cell(REGION, cell)

    def test_exactly_once_through_crash_restart(self):
        with tempfile.TemporaryDirectory() as tmp:
            dht = ChordDht.build(10, durability="log", data_dir=tmp)
            index, points = build_over(dht, n_points=80, seed=16)
            plane = ContinuousQueryPlane(index)
            subscriber = plane.subscribe(REGION)
            delivered_before = list(subscriber.delivered_keys)
            # Crash the table owner of a covered leaf, then insert a
            # point inside that leaf during the downtime.
            queued = None
            for label in sorted(plane.covered):
                cell = region_of_label(label, 2)
                mid = tuple(
                    min(max((lo + hi) / 2, 0.2001), 0.6999)
                    for lo, hi in zip(cell.lows, cell.highs)
                )
                if not cell.contains_point(mid):
                    continue
                victim = dht.peer_of(sub_key(naming_function(label, 2)))
                dht.fail(victim)
                try:
                    index.insert(mid)
                except NodeUnreachableError:
                    dht.restart(victim)
                    continue
                if plane.pending:
                    queued = mid
                    break
                dht.restart(victim)
            assert queued is not None, "no covered leaf produced a queue"
            assert queued not in subscriber.delivered_keys
            dht.restart(victim)
            flushed = plane.flush_pending()
            assert flushed == 1
            assert not plane.pending
            delivered = subscriber.delivered_keys
            assert delivered.count(queued) == 1
            assert delivered[: len(delivered_before)] == delivered_before
            assert len(delivered) == len(set(delivered))


class TestServiceContinuous:
    """Continuous queries as PUSH wire frames on the service runtime."""

    @pytest.mark.parametrize("kind", ["asyncio", "tcp"])
    def test_delivery_and_rehoming(self, kind):
        with create_dht(kind=kind, n_peers=8) as dht:
            index, points = build_over(dht, n_points=60, seed=21)
            plane = ServiceContinuousPlane(index)
            subscriber = plane.subscribe(REGION)
            rng = random.Random(22)
            batch = [(rng.random(), rng.random()) for _ in range(100)]
            for point in batch:
                index.insert(point)
            assert sorted(subscriber.delivered_keys) == in_region(batch)
            assert len(subscriber.delivered_keys) == len(
                set(subscriber.delivered_keys)
            )
            assert dht.stats.pushes > 0

    def test_exactly_once_through_crash_restart(self):
        with tempfile.TemporaryDirectory() as tmp:
            with create_dht(
                kind="asyncio", n_peers=8, durability="log", data_dir=tmp
            ) as dht:
                index, points = build_over(dht, n_points=80, seed=23)
                plane = ServiceContinuousPlane(index)
                subscriber = plane.subscribe(REGION)
                queued = None
                for label in sorted(plane.covered):
                    cell = region_of_label(label, 2)
                    mid = tuple(
                        min(max((lo + hi) / 2, 0.2001), 0.6999)
                        for lo, hi in zip(cell.lows, cell.highs)
                    )
                    if not cell.contains_point(mid):
                        continue
                    victim = dht.peer_of(
                        sub_key(naming_function(label, 2))
                    )
                    dht.fail(victim)
                    try:
                        index.insert(mid)
                    except NodeUnreachableError:
                        dht.restart(victim)
                        continue
                    if plane.pending:
                        queued = mid
                        break
                    dht.restart(victim)
                assert queued is not None
                dht.restart(victim)
                assert plane.flush_pending() == 1
                delivered = subscriber.delivered_keys
                assert delivered.count(queued) == 1
                assert len(delivered) == len(set(delivered))
