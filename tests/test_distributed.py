"""Tests for peer-side distributed query execution.

The headline property: the distributed runtime and the
client-orchestrated engine return identical answers at identical
metered costs — the paper's cost model cannot tell the deployments
apart.
"""

import random

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.common.geometry import Region
from repro.core.distributed import AGENT_SUFFIX, DistributedQueryRuntime
from repro.core.index import MLightIndex
from repro.dht.chord import ChordDht
from repro.dht.kademlia import KademliaDht
from repro.dht.localhash import LocalDht
from repro.dht.pastry import PastryDht
from tests.conftest import brute_force_range


def build_over(dht, n_points=250, seed=0):
    config = IndexConfig(
        dims=2, max_depth=14, split_threshold=10, merge_threshold=5
    )
    index = MLightIndex(dht, config)
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n_points)]
    for point in points:
        index.insert(point)
    return index, points, config


def random_queries(seed, count=8):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        lows = (rng.random() * 0.7, rng.random() * 0.7)
        highs = (
            lows[0] + rng.random() * 0.3, lows[1] + rng.random() * 0.3
        )
        queries.append(Region(lows, highs))
    return queries


class TestCorrectness:
    @pytest.mark.parametrize("factory", [
        lambda: ChordDht.build(10),
        lambda: KademliaDht.build(10),
        lambda: PastryDht.build(10),
    ], ids=["chord", "kademlia", "pastry"])
    def test_matches_brute_force(self, factory):
        dht = factory()
        index, points, config = build_over(dht)
        runtime = DistributedQueryRuntime(dht, 2, config.max_depth)
        for query in random_queries(1):
            result = runtime.query(query)
            assert sorted(r.key for r in result.records) == (
                brute_force_range(points, query)
            )

    def test_any_peer_can_initiate(self):
        dht = ChordDht.build(8)
        index, points, config = build_over(dht, seed=2)
        runtime = DistributedQueryRuntime(dht, 2, config.max_depth)
        query = Region((0.2, 0.2), (0.7, 0.7))
        expected = brute_force_range(points, query)
        for peer in dht.peers():
            result = runtime.query(query, initiator=peer)
            assert sorted(r.key for r in result.records) == expected

    def test_unknown_initiator_rejected(self):
        dht = ChordDht.build(4)
        _, _, config = build_over(dht, n_points=20)
        runtime = DistributedQueryRuntime(dht, 2, config.max_depth)
        with pytest.raises(ReproError):
            runtime.query(Region((0.1, 0.1), (0.2, 0.2)),
                          initiator="nobody")

    def test_localdht_rejected(self):
        with pytest.raises(ReproError):
            DistributedQueryRuntime(LocalDht(8), 2, 14)


class TestDeploymentEquivalence:
    """Peer-side forwarding == client orchestration, cost for cost."""

    @pytest.mark.parametrize("seed", range(3))
    def test_same_answers_same_costs(self, seed):
        dht = ChordDht.build(12)
        index, points, config = build_over(dht, seed=seed)
        runtime = DistributedQueryRuntime(dht, 2, config.max_depth)
        for query in random_queries(seed + 10):
            engine_result = index.range_query(query)
            distributed_result = runtime.query(query)
            assert sorted(
                r.key for r in distributed_result.records
            ) == sorted(r.key for r in engine_result.records)
            assert (
                distributed_result.visited_leaves
                == engine_result.visited_leaves
            )
            assert distributed_result.lookups == engine_result.lookups
            assert distributed_result.rounds == engine_result.rounds

    def test_agents_registered_on_every_peer(self):
        dht = ChordDht.build(6)
        build_over(dht, n_points=30)
        DistributedQueryRuntime(dht, 2, 14)
        for peer in dht.peers():
            assert dht.network.is_registered(peer + AGENT_SUFFIX)

    def test_local_bucket_read_is_free(self):
        """The agent reads its own bucket from its store: the only
        metered cost per forward is the routing lookup."""
        dht = ChordDht.build(8)
        index, points, config = build_over(dht, seed=5)
        runtime = DistributedQueryRuntime(dht, 2, config.max_depth)
        query = Region((0.0, 0.0), (1.0, 1.0))
        result = runtime.query(query)
        # Whole-space query: exactly one lookup per leaf bucket, no
        # extra gets (the engine pays the same via its gets).
        assert result.lookups == len(result.visited_leaves)
