"""Tests for consistent-hashing primitives and the peer store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import DhtKeyError
from repro.dht.hashing import (
    ID_BITS,
    ID_SPACE,
    key_digest,
    node_id_from_name,
    ring_between,
    ring_between_right_inclusive,
    ring_distance,
    xor_distance,
)
from repro.dht.storage import EncodedValue, PeerStore


class TestDigests:
    def test_deterministic(self):
        assert key_digest("ml:001") == key_digest("ml:001")

    def test_spread(self):
        digests = {key_digest(f"key-{i}") for i in range(100)}
        assert len(digests) == 100

    def test_width(self):
        assert 0 <= key_digest("x") < ID_SPACE
        assert ID_SPACE == 1 << ID_BITS

    def test_node_ids_differ_from_key_digests(self):
        assert node_id_from_name("x") != key_digest("x")


class TestRingIntervals:
    def test_plain_interval(self):
        assert ring_between(5, 1, 10)
        assert not ring_between(1, 1, 10)
        assert not ring_between(10, 1, 10)

    def test_wrapping_interval(self):
        high = ID_SPACE - 5
        assert ring_between(2, high, 10)
        assert ring_between(ID_SPACE - 1, high, 10)
        assert not ring_between(50, high, 10)

    def test_degenerate_interval_is_whole_ring(self):
        assert ring_between(123, 7, 7)
        assert not ring_between(7, 7, 7)

    def test_right_inclusive(self):
        assert ring_between_right_inclusive(10, 1, 10)
        assert not ring_between_right_inclusive(1, 1, 10)

    @given(st.integers(0, ID_SPACE - 1), st.integers(0, ID_SPACE - 1))
    def test_distance_antisymmetry(self, a, b):
        if a != b:
            assert ring_distance(a, b) + ring_distance(b, a) == ID_SPACE
        else:
            assert ring_distance(a, b) == 0

    @given(st.integers(0, ID_SPACE - 1), st.integers(0, ID_SPACE - 1))
    def test_xor_metric_axioms(self, a, b):
        assert xor_distance(a, b) == xor_distance(b, a)
        assert xor_distance(a, a) == 0


class TestPeerStore:
    def test_put_get_remove(self):
        store = PeerStore()
        store.put("k", 1)
        assert store.get("k") == 1
        assert "k" in store
        assert len(store) == 1
        assert store.remove("k") == 1
        assert "k" not in store

    def test_remove_missing_raises(self):
        with pytest.raises(DhtKeyError):
            PeerStore().remove("nope")

    def test_get_missing_is_none(self):
        assert PeerStore().get("nope") is None

    def test_overwrite_keeps_single_entry(self):
        store = PeerStore()
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2
        assert len(store) == 1

    def test_digest_cached(self):
        store = PeerStore()
        store.put("k", 1)
        assert store.digest_of("k") == key_digest("k")

    def test_pop_range_moves_matching(self):
        store = PeerStore()
        for index in range(20):
            store.put(f"key-{index}", index)
        threshold = key_digest("key-10")
        moved = store.pop_range(lambda digest: digest <= threshold)
        assert ("key-10", 10) in moved
        assert all(key_digest(key) <= threshold for key, _ in moved)
        assert len(moved) + len(store) == 20
        for key, _ in moved:
            assert key not in store

    def test_pop_range_wrapping_interval(self):
        """Churn handoff with a digest range that wraps past zero.

        A joining peer whose predecessor sits near the top of the ring
        takes over ``(lo, hi]`` with ``lo > hi``; the handoff predicate
        is :func:`ring_between_right_inclusive`, which must select keys
        on *both* sides of the wrap point.
        """
        store = PeerStore()
        keys = [f"wrap-{index}" for index in range(64)]
        for key in keys:
            store.put(key, key.upper())
        digests = sorted(key_digest(key) for key in keys)
        # Pick bounds so the wrapped interval covers the lowest and
        # highest digests but excludes the middle of the ring.
        lo = digests[-8]  # high end of the ring: interval starts here...
        hi = digests[7]  # ...wraps through 0, ends at the low end.
        assert lo > hi, "interval must wrap for this test to bite"
        moved = store.pop_range(
            lambda digest: ring_between_right_inclusive(digest, lo, hi)
        )
        expected = {
            key
            for key in keys
            if ring_between_right_inclusive(key_digest(key), lo, hi)
        }
        assert {key for key, _ in moved} == expected
        # Both sides of the wrap point are represented.
        assert any(key_digest(key) > lo for key in expected)
        assert any(key_digest(key) <= hi for key in expected)
        for key, value in moved:
            assert key not in store
            assert value == key.upper()
        assert len(store) == len(keys) - len(moved)

    def test_pop_range_then_digest_of_raises_dht_error(self):
        store = PeerStore()
        store.put("gone", 1)
        store.pop_range(lambda digest: True)
        with pytest.raises(DhtKeyError):
            store.digest_of("gone")

    def test_digest_of_after_remove_raises_dht_error(self):
        """A removed key must raise the domain error, not bare KeyError."""
        store = PeerStore()
        store.put("k", 1)
        store.remove("k")
        with pytest.raises(DhtKeyError):
            store.digest_of("k")

    def test_digest_of_missing_raises_dht_error(self):
        with pytest.raises(DhtKeyError):
            PeerStore().digest_of("never-stored")


class TestEncodedPeerStore:
    def test_values_held_as_bytes_decoded_on_access(self):
        store = PeerStore(encoded=True)
        assert store.encoded
        store.put("k", {"payload": [1, 2, 3]})
        assert isinstance(store._values["k"], EncodedValue)
        assert store.get("k") == {"payload": [1, 2, 3]}
        assert dict(store.items()) == {"k": {"payload": [1, 2, 3]}}
        assert store.remove("k") == {"payload": [1, 2, 3]}

    def test_pop_range_hands_off_raw_blobs(self):
        """Churn moves bytes: an encoded store's handoff list carries
        the EncodedValue blobs themselves, not decoded objects."""
        source = PeerStore(encoded=True)
        for index in range(8):
            source.put(f"k-{index}", index * 10)
        moved = source.pop_range(lambda digest: True)
        assert moved and all(
            isinstance(value, EncodedValue) for _, value in moved
        )

    def test_plain_store_decodes_handoff_blobs(self):
        source = PeerStore(encoded=True)
        source.put("k", ("tuple", 42))
        [(key, blob)] = source.pop_range(lambda digest: True)
        plain = PeerStore()
        plain.put(key, blob)
        assert plain._values["k"] == ("tuple", 42)
        assert plain.get("k") == ("tuple", 42)

    def test_encoded_store_keeps_handoff_blobs(self):
        source = PeerStore(encoded=True)
        source.put("k", ("tuple", 42))
        [(key, blob)] = source.pop_range(lambda digest: True)
        target = PeerStore(encoded=True)
        target.put(key, blob)
        assert target._values["k"] is blob
        assert target.get("k") == ("tuple", 42)
