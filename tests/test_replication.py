"""Tests for Chord successor replication and crash survival."""

import random

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import DhtKeyError, ReproError
from repro.common.geometry import Region
from repro.core.index import MLightIndex
from repro.dht.chord import ChordDht


class TestReplicaPlacement:
    def test_put_stores_r_copies(self):
        dht = ChordDht.build(12, replication=3)
        dht.put("k", "v")
        holders = [
            name for name in dht.peers() if "k" in dht.node(name).store
        ]
        assert len(holders) == 3
        assert dht.peer_of("k") in holders

    def test_items_counts_each_key_once(self):
        dht = ChordDht.build(12, replication=3)
        for index in range(30):
            dht.put(f"key-{index}", index)
        assert sum(1 for _ in dht.items()) == 30

    def test_remove_clears_all_replicas(self):
        dht = ChordDht.build(12, replication=3)
        dht.put("k", "v")
        assert dht.remove("k") == "v"
        assert all("k" not in dht.node(n).store for n in dht.peers())
        with pytest.raises(DhtKeyError):
            dht.remove("k")

    def test_invalid_replication(self):
        with pytest.raises(ReproError):
            ChordDht.build(4, replication=0)


class TestCrashSurvival:
    def test_single_crash_loses_nothing(self):
        dht = ChordDht.build(12, replication=3)
        for index in range(60):
            dht.put(f"key-{index}", index)
        victim = dht.peer_of("key-7")  # kill an owner specifically
        dht.fail(victim)
        dht.stabilize_all(4)
        for index in range(60):
            assert dht.get(f"key-{index}") == index

    def test_repair_restores_invariant(self):
        dht = ChordDht.build(12, replication=3)
        for index in range(60):
            dht.put(f"key-{index}", index)
        rng = random.Random(5)
        for _ in range(2):
            dht.fail(rng.choice(dht.peers()))
            dht.stabilize_all(4)
            dht.repair_replicas()
        # Every key back to exactly 3 live copies on the right peers.
        for index in range(60):
            key = f"key-{index}"
            holders = [
                name for name in dht.peers()
                if key in dht.node(name).store
            ]
            assert len(holders) == 3, key
            assert dht.peer_of(key) in holders

    def test_unreplicated_ring_loses_crashed_data(self):
        """Negative control: replication=1 really is lossy."""
        dht = ChordDht.build(12, replication=1)
        for index in range(60):
            dht.put(f"key-{index}", index)
        victim = dht.peer_of("key-7")
        dht.fail(victim)
        dht.stabilize_all(4)
        assert dht.get("key-7") is None


class TestIndexOverReplicatedRing:
    def test_index_survives_owner_crashes(self):
        """m-LIGHT keeps answering after crashes, unchanged — the
        over-DHT layering means resilience is purely the DHT's job."""
        rng = random.Random(6)
        config = IndexConfig(
            dims=2, max_depth=14, split_threshold=10, merge_threshold=5
        )
        dht = ChordDht.build(12, replication=3)
        index = MLightIndex(dht, config)
        points = [(rng.random(), rng.random()) for _ in range(150)]
        for point in points:
            index.insert(point)
        query = Region((0.2, 0.2), (0.8, 0.8))
        before = sorted(r.key for r in index.range_query(query).records)

        dht.fail(dht.peers()[4])
        dht.stabilize_all(4)
        dht.repair_replicas()

        after = sorted(r.key for r in index.range_query(query).records)
        assert after == before
