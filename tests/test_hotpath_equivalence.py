"""Equivalence of the CPU fast paths with their reference implementations.

The hot-loop optimisations (packed labels, memoized geometry, columnar
bucket filtering, region-threaded splitting) are pure re-expressions:
every one must be *bit-identical* to the straightforward string/naive
code it replaces.  These property tests drive randomized workloads in
1–4 dimensions through both paths and compare exactly — no tolerance,
no sorting-away of order differences.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import InvalidLabelError
from repro.common.geometry import (
    Region,
    region_of_label,
    unit_region,
)
from repro.common.labels import (
    candidate_string,
    children,
    common_prefix,
    coordinate_bits,
    interleave,
    is_valid_label,
    label_depth,
    pack_label,
    packed_candidate,
    packed_children,
    packed_common_prefix,
    packed_depth,
    packed_interleave,
    packed_is_prefix,
    packed_is_valid,
    packed_parent,
    packed_prefix,
    packed_root,
    packed_sibling,
    packed_split_dimension,
    packed_virtual_root,
    parent,
    root_label,
    sibling,
    split_dimension,
    unpack_label,
    virtual_root,
)
from repro.core.bucket import LeafBucket
from repro.core.columnar import ColumnStore
from repro.core.naming import (
    naming_function,
    naming_function_recursive,
    packed_naming_function,
)
from repro.core.records import Record
from repro.core.split import (
    DataAwareSplit,
    ThresholdSplit,
    partition_records,
)
from tests.conftest import labels_strategy, points_strategy, random_tree_leaves

DIMS = [1, 2, 3, 4]


def dims_and_label():
    """Strategy: (dims, random valid non-virtual-root label), dims 1–4."""
    return st.integers(min_value=1, max_value=4).flatmap(
        lambda dims: st.tuples(st.just(dims), labels_strategy(dims, 16))
    )


def dims_and_point():
    """Strategy: (dims, random point in [0,1)^dims), dims 1–4."""
    return st.integers(min_value=1, max_value=4).flatmap(
        lambda dims: st.tuples(st.just(dims), points_strategy(dims))
    )


# ----------------------------------------------------------------------
# Packed label ops vs the string implementations
# ----------------------------------------------------------------------


class TestPackedLabelOps:
    @given(dims_and_label())
    def test_pack_roundtrip(self, dims_label):
        dims, label = dims_label
        assert unpack_label(pack_label(label)) == label

    @pytest.mark.parametrize("dims", DIMS)
    def test_roots(self, dims):
        assert unpack_label(packed_virtual_root(dims)) == virtual_root(dims)
        assert unpack_label(packed_root(dims)) == root_label(dims)

    @given(dims_and_label())
    def test_validity_depth_split_dimension(self, dims_label):
        dims, label = dims_label
        packed = pack_label(label)
        assert packed_is_valid(packed, dims) == is_valid_label(label, dims)
        assert packed_depth(packed, dims) == label_depth(label, dims)
        assert packed_split_dimension(packed, dims) == split_dimension(
            label, dims
        )

    @pytest.mark.parametrize("dims", DIMS)
    def test_validity_rejects_what_strings_reject(self, dims):
        # Wrong virtual-root prefix, too-short labels, junk lengths.
        assert not packed_is_valid((1, dims), dims)  # "0…01" too short
        assert not packed_is_valid((0, dims - 1), dims)
        assert not packed_is_valid((1 << dims, dims), dims)  # overlong bits
        assert packed_is_valid((0, dims), dims)  # virtual root

    @given(dims_and_label())
    def test_parent_children_sibling(self, dims_label):
        dims, label = dims_label
        packed = pack_label(label)
        assert unpack_label(packed_parent(packed, dims)) == parent(label, dims)
        lower, upper = children(label, dims)
        p_lower, p_upper = packed_children(packed, dims)
        assert unpack_label(p_lower) == lower
        assert unpack_label(p_upper) == upper
        if len(label) > dims + 1:
            assert unpack_label(packed_sibling(packed, dims)) == sibling(
                label, dims
            )
        else:
            with pytest.raises(InvalidLabelError):
                packed_sibling(packed, dims)

    @pytest.mark.parametrize("dims", DIMS)
    def test_virtual_root_structural_errors(self, dims):
        packed = packed_virtual_root(dims)
        with pytest.raises(InvalidLabelError):
            packed_parent(packed, dims)
        with pytest.raises(InvalidLabelError):
            packed_children(packed, dims)

    @given(dims_and_label(), st.data())
    def test_prefix_and_is_prefix(self, dims_label, data):
        dims, label = dims_label
        packed = pack_label(label)
        cut = data.draw(st.integers(min_value=0, max_value=len(label)))
        prefix = packed_prefix(packed, cut)
        assert unpack_label(prefix) == label[:cut]
        assert packed_is_prefix(prefix, packed)
        assert packed_is_prefix(packed, prefix) == (cut == len(label))

    @given(dims_and_label(), st.data())
    def test_common_prefix(self, dims_label, data):
        dims, first = dims_label
        second = data.draw(labels_strategy(dims, 16))
        expected = common_prefix(first, second)
        got = packed_common_prefix(pack_label(first), pack_label(second))
        assert unpack_label(got) == expected

    @given(dims_and_point(), st.integers(min_value=0, max_value=24))
    def test_interleave_matches_coordinate_bits(self, dims_point, depth):
        dims, point = dims_point
        # Reference: assemble the Morton string one coordinate-bit at a
        # time, exactly as the pre-packed implementation did.
        per_dim = -(-depth // dims)
        expansions = [coordinate_bits(value, per_dim) for value in point]
        expected = "".join(
            expansions[position][index]
            for index in range(per_dim)
            for position in range(dims)
        )[:depth]
        assert interleave(point, depth) == expected
        assert unpack_label(packed_interleave(point, depth)) == expected

    @given(dims_and_point(), st.integers(min_value=0, max_value=24))
    def test_candidate_matches_root_plus_interleave(self, dims_point, depth):
        dims, point = dims_point
        expected = root_label(dims) + interleave(point, depth)
        assert candidate_string(point, depth) == expected
        assert unpack_label(packed_candidate(point, depth)) == expected

    @given(dims_and_label())
    def test_packed_naming_matches_recursive_definition(self, dims_label):
        dims, label = dims_label
        packed = pack_label(label)
        assert unpack_label(packed_naming_function(packed, dims)) == (
            naming_function_recursive(label, dims)
        )
        assert unpack_label(packed_naming_function(packed, dims)) == (
            naming_function(label, dims)
        )

    @pytest.mark.parametrize("dims", DIMS)
    def test_packed_naming_rejects_all_agreeing_labels(self, dims):
        # A label whose every bit equals the bit m back has no
        # disagreement — structurally impossible for valid labels, and
        # both implementations refuse it the same way.
        packed = packed_virtual_root(dims)
        with pytest.raises(InvalidLabelError):
            packed_naming_function(packed, dims)


# ----------------------------------------------------------------------
# Memoized geometry vs a manual split walk
# ----------------------------------------------------------------------


class TestMemoizedGeometry:
    @staticmethod
    def walk_region(label: str, dims: int) -> Region:
        """Reference: derive the cell by splitting from the unit region
        one edge bit at a time (the pre-memoization implementation)."""
        region = unit_region(dims)
        for index, bit in enumerate(label[dims + 1 :]):
            lower, upper = region.split(index % dims)
            region = upper if bit == "1" else lower
        return region

    @given(dims_and_label())
    def test_region_of_label_matches_walk(self, dims_label):
        dims, label = dims_label
        assert region_of_label(label, dims) == self.walk_region(label, dims)

    @given(dims_and_label())
    def test_bucket_region_cache_matches_walk(self, dims_label):
        dims, label = dims_label
        bucket = LeafBucket(label, dims)
        assert bucket.region == self.walk_region(label, dims)
        # Cached object is stable across calls.
        assert bucket.region is bucket.region


# ----------------------------------------------------------------------
# Columnar filtering vs the naive scan, across mutations
# ----------------------------------------------------------------------


def _random_records(rng, region, dims, count):
    records = []
    for index in range(count):
        key = tuple(
            rng.uniform(low, high)
            for low, high in zip(region.lows, region.highs)
        )
        # Clamp away the (measure-zero but possible) high endpoint.
        key = tuple(
            min(value, high * (1 - 1e-12))
            for value, high in zip(key, region.highs)
        )
        records.append(Record(key, index))
    return records


def _random_query(rng, dims):
    bounds = [sorted((rng.random(), rng.random())) for _ in range(dims)]
    return Region(
        tuple(low for low, _ in bounds), tuple(high for _, high in bounds)
    )


class TestColumnarMatching:
    @pytest.mark.parametrize("dims", DIMS)
    def test_matches_naive_across_random_workloads(self, dims, rng):
        for trial in range(10):
            leaves = random_tree_leaves(rng, dims, max_depth=6)
            label = rng.choice(leaves)
            bucket = LeafBucket(label, dims)
            for record in _random_records(
                rng, bucket.region, dims, rng.randrange(0, 120)
            ):
                bucket.add(record)
            for _ in range(8):
                query = _random_query(rng, dims)
                assert bucket.matching(query) == bucket.matching_naive(query)

    @pytest.mark.parametrize("dims", DIMS)
    def test_matches_naive_after_mutations(self, dims, rng):
        bucket = LeafBucket(root_label(dims), dims)
        pool = _random_records(rng, bucket.region, dims, 150)
        for record in pool[:100]:
            bucket.add(record)
        query = _random_query(rng, dims)
        assert bucket.matching(query) == bucket.matching_naive(query)
        # Interleave adds, removes and queries; the lazily rebuilt
        # store must track every mutation.
        for step in range(30):
            if rng.random() < 0.5 and bucket.records:
                bucket.remove(rng.choice(bucket.records))
            else:
                bucket.add(pool[100 + step % 50])
            query = _random_query(rng, dims)
            assert bucket.matching(query) == bucket.matching_naive(query)

    @pytest.mark.parametrize("kind", ["columnar", "numpy"])
    def test_generation_counter_invalidates_equal_count_swap(self, kind):
        # Regression for the old count backstop: remove one record and
        # add a different one — the count is unchanged, so a store
        # keyed on count would keep serving the stale snapshot.  The
        # generation counter bumps on *every* mutation.
        bucket = LeafBucket(root_label(2), 2, store=kind)
        old = Record((0.25, 0.25), "old")
        keeper = Record((0.75, 0.75), "keeper")
        bucket.add(old)
        bucket.add(keeper)
        everything = Region((0.0, 0.0), (1.0, 1.0))
        assert bucket.matching(everything) == [old, keeper]
        generation = bucket.store.generation
        new = Record((0.5, 0.5), "new")
        bucket.remove(old)
        bucket.add(new)
        assert bucket.load == 2  # equal count: the backstop's blind spot
        assert bucket.store.generation == generation + 2
        assert bucket.matching(everything) == [keeper, new]
        assert bucket.matching(everything) == bucket.matching_naive(everything)

    @pytest.mark.parametrize("dims", DIMS)
    def test_positions_are_insertion_ordered(self, dims, rng):
        records = _random_records(rng, unit_region(dims), dims, 80)
        store = ColumnStore(records, dims, sort_dim=dims - 1)
        query = _random_query(rng, dims)
        positions = store.matching_positions(query.lows, query.highs)
        assert positions == sorted(positions)
        assert store.matching(records, query.lows, query.highs) == [
            record
            for record in records
            if query.contains_point_closed(record.key)
        ]

    def test_empty_store(self):
        store = ColumnStore([], 2, 0)
        assert store.matching_positions((0.0, 0.0), (1.0, 1.0)) == []


# ----------------------------------------------------------------------
# Record-store backends vs the list oracle, across dims and overlays
# ----------------------------------------------------------------------


STORE_BACKENDS = ["list", "columnar", "numpy"]


class TestStoreBackendEquivalence:
    """Every registered backend is a bit-identical re-expression of the
    naive record list — at the bucket level across 1–4 dimensions, and
    end-to-end through every overlay."""

    @pytest.mark.parametrize("kind", STORE_BACKENDS)
    @pytest.mark.parametrize("dims", DIMS)
    def test_bucket_matching_identical_to_list_store(self, kind, dims, rng):
        for _ in range(6):
            leaves = random_tree_leaves(rng, dims, max_depth=6)
            label = rng.choice(leaves)
            oracle = LeafBucket(label, dims, store="list")
            bucket = LeafBucket(label, dims, store=kind)
            for record in _random_records(
                rng, bucket.region, dims, rng.randrange(0, 120)
            ):
                oracle.add(record)
                bucket.add(record)
            for _ in range(6):
                query = _random_query(rng, dims)
                got = bucket.matching(query)
                assert got == oracle.matching(query)
                assert got == bucket.matching_naive(query)
                # Insertion order, not just set equality.
                positions = [oracle.records.index(r) for r in got]
                assert positions == sorted(positions)

    @pytest.mark.parametrize("kind", STORE_BACKENDS)
    @pytest.mark.parametrize("overlay", ["chord", "kademlia", "pastry"])
    def test_index_answers_identical_across_overlays(
        self, kind, overlay, rng
    ):
        from repro.common.config import IndexConfig
        from repro.core.index import MLightIndex
        from repro.runtime import RuntimeConfig, create_dht

        points = [
            tuple(rng.random() for _ in range(2)) for _ in range(250)
        ]
        queries = [_random_query(rng, 2) for _ in range(8)]

        def answers(store_kind):
            config = IndexConfig(
                dims=2, split_threshold=25, merge_threshold=12,
                store=store_kind,
            )
            dht = create_dht(
                RuntimeConfig(kind="sim", overlay=overlay, n_peers=6)
            )
            index = MLightIndex(dht, config)
            index.insert_many(points)
            return [
                [r.key for r in index.range_query(
                    (q.lows, q.highs)
                ).records]
                for q in queries
            ]

        assert answers(kind) == answers("list")


# ----------------------------------------------------------------------
# Region-threaded splitting vs label-derived regions
# ----------------------------------------------------------------------


class TestSplitRegionThreading:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_partition_records_region_argument_is_equivalent(self, dims, rng):
        leaves = random_tree_leaves(rng, dims, max_depth=5)
        for label in leaves:
            region = region_of_label(label, dims)
            records = _random_records(rng, region, dims, 30)
            assert partition_records(label, dims, records) == (
                partition_records(label, dims, records, region)
            )

    @pytest.mark.parametrize("dims", [1, 2, 3])
    @pytest.mark.parametrize(
        "strategy",
        [ThresholdSplit(8), DataAwareSplit(6)],
        ids=["threshold", "data-aware"],
    )
    def test_plans_match_label_derived_reference(self, dims, strategy, rng):
        """Plans equal a reference that re-derives every cell by label.

        The reference recursion partitions with ``region=None`` at every
        level — exactly what the code did before regions were threaded
        through — so any drift introduced by incremental midpoints
        (`Region.split`) would show up as a differing plan.
        """

        def reference(label, records, depth_cap):
            dim = split_dimension(label, dims)
            region = region_of_label(label, dims)
            midpoint = (region.lows[dim] + region.highs[dim]) / 2.0
            lower = [r for r in records if r.key[dim] < midpoint]
            upper = [r for r in records if r.key[dim] >= midpoint]
            return lower, upper

        for trial in range(10):
            label = root_label(dims) + "".join(
                rng.choice("01") for _ in range(rng.randrange(0, 6))
            )
            records = _random_records(
                rng, region_of_label(label, dims), dims, 40
            )
            plan = strategy.plan_split(label, records, dims, max_depth=12)
            if plan is None:
                continue
            # Every plan leaf holds exactly the records the by-label
            # partition chain assigns to it.
            for leaf_label, leaf_records in plan.leaves:
                chain_records = list(records)
                for end in range(len(label), len(leaf_label)):
                    prefix = leaf_label[:end]
                    lower, upper = reference(prefix, chain_records, None)
                    chain_records = (
                        upper if leaf_label[end] == "1" else lower
                    )
                assert list(leaf_records) == chain_records
