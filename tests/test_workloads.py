"""Tests for workload generators."""

import pytest

from repro.common.errors import ReproError
from repro.dht.localhash import LocalDht
from repro.core.index import MLightIndex
from repro.common.config import IndexConfig
from repro.workloads.queries import point_queries, uniform_range_queries
from repro.workloads.traces import (
    Operation,
    apply_trace,
    insert_trace,
    mixed_trace,
)


class TestRangeQueries:
    def test_span_is_area(self):
        queries = uniform_range_queries(50, span=0.09, seed=1)
        for query in queries:
            assert query.volume() == pytest.approx(0.09, rel=0.05)

    def test_inside_unit_cube(self):
        for query in uniform_range_queries(100, span=0.25, seed=2):
            assert all(low >= 0.0 for low in query.lows)
            assert all(high <= 1.0 for high in query.highs)

    def test_no_jitter_gives_squares(self):
        for query in uniform_range_queries(
            20, span=0.04, aspect_jitter=0.0, seed=3
        ):
            assert query.side(0) == pytest.approx(query.side(1))

    def test_deterministic(self):
        assert uniform_range_queries(5, 0.1, seed=4) == (
            uniform_range_queries(5, 0.1, seed=4)
        )

    def test_3d(self):
        queries = uniform_range_queries(20, span=0.008, dims=3, seed=5)
        for query in queries:
            assert query.dims == 3
            assert query.volume() == pytest.approx(0.008, rel=0.1)

    def test_validation(self):
        with pytest.raises(ReproError):
            uniform_range_queries(5, span=0.0)
        with pytest.raises(ReproError):
            uniform_range_queries(5, span=0.1, aspect_jitter=1.0)


class TestPointQueries:
    def test_samples_from_dataset(self):
        points = [(0.1, 0.1), (0.2, 0.2)]
        sampled = point_queries(points, 20, seed=6)
        assert len(sampled) == 20
        assert set(sampled) <= set(points)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ReproError):
            point_queries([], 5)


class TestTraces:
    def test_insert_trace(self):
        trace = insert_trace([(0.1, 0.1), (0.2, 0.2)], value="v")
        assert [op.kind for op in trace] == ["insert", "insert"]
        assert trace[0].value == "v"

    def test_mixed_trace_inserts_everything(self):
        points = [(i / 100.0, i / 100.0) for i in range(50)]
        trace = mixed_trace(points, delete_fraction=0.3, seed=7)
        inserts = [op for op in trace if op.kind == "insert"]
        deletes = [op for op in trace if op.kind == "delete"]
        assert len(inserts) == 50
        assert deletes  # some deletions interleaved
        # Every deletion targets a previously inserted, still-live key.
        live = set()
        for op in trace:
            if op.kind == "insert":
                live.add(op.key)
            else:
                assert op.key in live
                live.remove(op.key)

    def test_mixed_trace_validation(self):
        with pytest.raises(ReproError):
            mixed_trace([(0.1, 0.1)], delete_fraction=1.0)

    def test_apply_trace(self):
        index = MLightIndex(
            LocalDht(8),
            IndexConfig(dims=2, max_depth=12, split_threshold=8,
                        merge_threshold=4),
        )
        points = [(i / 20.0, i / 20.0) for i in range(10)]
        trace = mixed_trace(points, delete_fraction=0.2, seed=8)
        inserts, deletes = apply_trace(index, trace)
        assert inserts == 10
        assert index.total_records() == inserts - deletes

    def test_apply_trace_rejects_unknown_op(self):
        index = MLightIndex(
            LocalDht(8),
            IndexConfig(dims=2, max_depth=12, split_threshold=8,
                        merge_threshold=4),
        )
        with pytest.raises(ReproError):
            apply_trace(index, [Operation("upsert", (0.1, 0.1))])
