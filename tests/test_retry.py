"""Tests for the retrying DHT decorator over lossy networks."""

import random

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import DhtKeyError, ReproError
from repro.common.geometry import Region
from repro.core.index import MLightIndex
from repro.dht.chord import ChordDht
from repro.dht.localhash import LocalDht
from repro.dht.retry import RetryingDht
from repro.net.simnet import RpcError, SimNetwork
from tests.conftest import brute_force_range


class FlakyDht(LocalDht):
    """LocalDht that fails the first *failures* wire operations."""

    def __init__(self, failures: int):
        super().__init__(8)
        self._failures = failures

    def _maybe_fail(self):
        if self._failures > 0:
            self._failures -= 1
            raise RpcError("injected failure")

    def _do_lookup(self, key):
        self._maybe_fail()
        return super()._do_lookup(key)

    def _do_get(self, key):
        self._maybe_fail()
        return super()._do_get(key)

    def _do_put(self, key, value):
        self._maybe_fail()
        super()._do_put(key, value)


class TestRetrySemantics:
    def test_transparent_success(self):
        dht = RetryingDht(LocalDht(8))
        dht.put("k", 1)
        assert dht.get("k") == 1
        assert dht.retries == 0

    def test_retries_transient_failures(self):
        dht = RetryingDht(FlakyDht(failures=2), attempts=3)
        dht.put("k", 1)  # first op eats both failures via retries
        assert dht.get("k") == 1
        assert dht.retries == 2

    def test_gives_up_after_attempts(self):
        dht = RetryingDht(FlakyDht(failures=10), attempts=3)
        with pytest.raises(RpcError):
            dht.put("k", 1)
        assert dht.retries == 2  # attempts - 1

    def test_data_errors_not_retried(self):
        dht = RetryingDht(LocalDht(8), attempts=3)
        with pytest.raises(DhtKeyError):
            dht.remove("ghost")
        assert dht.retries == 0

    def test_attempts_are_metered(self):
        """Each retried attempt costs a real DHT-lookup."""
        dht = RetryingDht(FlakyDht(failures=2), attempts=3)
        dht.put("k", 1)
        assert dht.stats.lookups == 3  # two failures + one success

    def test_invalid_attempts(self):
        with pytest.raises(ReproError):
            RetryingDht(LocalDht(8), attempts=0)

    def test_oracle_passthrough(self):
        inner = LocalDht(8)
        dht = RetryingDht(inner)
        dht.put("k", 1)
        assert dht.peer_of("k") == inner.peer_of("k")
        assert dict(dht.items()) == {"k": 1}
        assert dht.peek("k") == 1
        assert dht.peers() == inner.peers()


class TestIndexOverLossyChord:
    def test_index_survives_message_drops(self):
        """m-LIGHT over a Chord ring dropping 2% of messages, wrapped
        in retries: every operation still completes and answers stay
        exact."""
        rng = random.Random(1)
        network = SimNetwork(drop_probability=0.02, seed=7)
        chord = ChordDht.build(12, network=network)
        dht = RetryingDht(chord, attempts=8)
        config = IndexConfig(
            dims=2, max_depth=12, split_threshold=10, merge_threshold=5
        )
        index = MLightIndex(dht, config)
        points = [(rng.random(), rng.random()) for _ in range(120)]
        for point in points:
            index.insert(point)
        query = Region((0.2, 0.2), (0.8, 0.8))
        got = sorted(r.key for r in index.range_query(query).records)
        assert got == brute_force_range(points, query)
        assert dht.retries > 0  # the drops actually happened
