"""Tests for splitting strategies, including Theorem 6's optimality."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ReproError
from repro.common.labels import root_label, split_dimension
from repro.core.records import Record
from repro.core.split import (
    DataAwareSplit,
    SplitPlan,
    ThresholdSplit,
    partition_records,
)
from tests.conftest import points_strategy


def records_of(points):
    return [Record(tuple(point)) for point in points]


class TestPartition:
    def test_splits_on_midpoint_of_split_dimension(self):
        records = records_of([(0.1, 0.9), (0.6, 0.1), (0.5, 0.5)])
        lower, upper = partition_records("001", 2, records)  # splits dim 0
        assert [record.key for record in lower] == [(0.1, 0.9)]
        assert {record.key for record in upper} == {(0.6, 0.1), (0.5, 0.5)}

    def test_alternates_dimensions(self):
        records = records_of([(0.1, 0.2), (0.1, 0.8)])
        lower, upper = partition_records("0010", 2, records)  # splits dim 1
        assert [record.key for record in lower] == [(0.1, 0.2)]
        assert [record.key for record in upper] == [(0.1, 0.8)]

    @given(st.lists(points_strategy(2), max_size=40), st.data())
    def test_partition_is_exact(self, points, data):
        label = root_label(2) + data.draw(st.text(alphabet="01", max_size=6))
        from repro.common.geometry import region_of_label

        region = region_of_label(label, 2)
        records = [
            Record(point) for point in points if region.contains_point(point)
        ]
        lower, upper = partition_records(label, 2, records)
        assert len(lower) + len(upper) == len(records)
        dim = split_dimension(label, 2)
        midpoint = (region.lows[dim] + region.highs[dim]) / 2.0
        assert all(record.key[dim] < midpoint for record in lower)
        assert all(record.key[dim] >= midpoint for record in upper)


class TestSplitPlanValidation:
    def test_requires_two_leaves(self):
        with pytest.raises(ReproError):
            SplitPlan("001", (("0010", ()),))

    def test_leaves_must_be_below_origin(self):
        with pytest.raises(ReproError):
            SplitPlan("0010", (("0010", ()), ("0011", ())))


class TestThresholdSplit:
    def test_no_split_at_or_below_threshold(self):
        strategy = ThresholdSplit(4)
        records = records_of([(0.1, 0.1)] * 4)
        assert strategy.plan_split("001", records, 2, 20) is None

    def test_single_level_split(self):
        strategy = ThresholdSplit(4)
        points = [(0.1, 0.5), (0.2, 0.5), (0.8, 0.5), (0.9, 0.5), (0.7, 0.5)]
        plan = strategy.plan_split("001", records_of(points), 2, 20)
        assert plan is not None
        labels = {label for label, _ in plan.leaves}
        assert labels == {"0010", "0011"}
        assert plan.total_records == 5

    def test_cascading_split_on_clustered_data(self):
        """All records in one octant force a multi-level plan with
        empty siblings — the Fig. 6b phenomenon."""
        strategy = ThresholdSplit(4)
        points = [(0.01 + i * 0.001, 0.01) for i in range(6)]
        plan = strategy.plan_split("001", records_of(points), 2, 20)
        assert plan is not None
        loads = {label: len(records) for label, records in plan.leaves}
        assert sum(loads.values()) == 6
        assert any(load == 0 for load in loads.values())  # empty sibling
        assert all(load <= 4 for load in loads.values())

    def test_depth_cap_stops_recursion(self):
        strategy = ThresholdSplit(1)
        records = records_of([(0.1, 0.1), (0.1, 0.1), (0.1, 0.1)])
        plan = strategy.plan_split("001", records, 2, 3)
        if plan is not None:
            assert all(
                len(label) - 3 <= 3 for label, _ in plan.leaves
            )

    def test_default_merge_threshold(self):
        strategy = ThresholdSplit(100)
        assert strategy.merge_threshold == 50
        assert strategy.should_merge(20, 29)
        assert not strategy.should_merge(20, 30)

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            ThresholdSplit(0)
        with pytest.raises(ReproError):
            ThresholdSplit(10, 10)


class TestDataAwareSplit:
    def test_paper_example_before_insertion(self):
        """Fig. 3a: four points, epsilon=2 — the minimised difference
        equals the unsplit difference, so no split is triggered."""
        strategy = DataAwareSplit(2)
        points = [(0.1, 0.8), (0.3, 0.9), (0.2, 0.55), (0.4, 0.60)]
        records = records_of(points)
        assert strategy.optimal_cost("001", records, 2, 20) <= 4.0
        assert strategy.plan_split("001", records, 2, 20) is None

    def test_paper_example_after_insertion(self):
        """Fig. 3b: inserting (0.2, 0.2) drops the minimised difference
        to 1 against an unsplit difference of 9 — the bucket splits
        into three cells loaded (2, 2, 1)."""
        strategy = DataAwareSplit(2)
        points = [
            (0.1, 0.8), (0.3, 0.9),   # upper-left quadrant-ish pair
            (0.2, 0.55), (0.4, 0.60),  # mid pair
            (0.2, 0.2),                # the new point
        ]
        records = records_of(points)
        plan = strategy.plan_split("001", records, 2, 20)
        assert plan is not None
        loads = sorted(len(records) for _, records in plan.leaves)
        assert sum(loads) == 5
        assert strategy.optimal_cost("001", records, 2, 20) < (5 - 2) ** 2

    def test_no_split_when_not_beneficial(self):
        strategy = DataAwareSplit(10)
        records = records_of([(0.1, 0.1)] * 12)  # coincident: never helps
        assert strategy.plan_split("001", records, 2, 12) is None

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force_optimum(self, seed):
        """Algorithm 1 equals exhaustive search over all subtrees."""
        rng = random.Random(seed)
        epsilon = 3
        strategy = DataAwareSplit(epsilon)
        points = [(rng.random(), rng.random()) for _ in range(12)]
        records = records_of(points)
        max_depth = 4

        def brute(label, recs):
            local = float((len(recs) - epsilon) ** 2)
            if len(label) - 3 >= max_depth:
                return local
            lower, upper = partition_records(label, 2, recs)
            return min(
                local, brute(label + "0", lower) + brute(label + "1", upper)
            )

        assert strategy.optimal_cost(
            "001", records, 2, max_depth
        ) == pytest.approx(brute("001", records))

    @given(st.lists(points_strategy(2), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_plan_never_increases_objective(self, points):
        strategy = DataAwareSplit(3)
        records = records_of(points)
        local = float((len(records) - 3) ** 2)
        optimal = strategy.optimal_cost("001", records, 2, 8)
        assert optimal <= local
        plan = strategy.plan_split("001", records, 2, 8)
        if plan is not None:
            realized = sum(
                (len(leaf_records) - 3) ** 2
                for _, leaf_records in plan.leaves
            )
            assert realized == pytest.approx(optimal)
            assert realized < local

    def test_merge_criterion(self):
        strategy = DataAwareSplit(18)
        assert strategy.should_merge(8, 7)       # (15-18)^2 < errors apart
        assert not strategy.should_merge(18, 18)  # perfect as they are

    def test_split_merge_no_oscillation(self):
        """A split the planner chooses is never immediately merged back."""
        strategy = DataAwareSplit(4)
        rng = random.Random(7)
        points = [(rng.random(), rng.random()) for _ in range(20)]
        plan = strategy.plan_split("001", records_of(points), 2, 10)
        if plan is None:
            return
        by_label = dict(plan.leaves)
        for label, records in plan.leaves:
            sibling = label[:-1] + ("1" if label[-1] == "0" else "0")
            if sibling in by_label:
                assert not strategy.should_merge(
                    len(records), len(by_label[sibling])
                )

    def test_invalid_epsilon(self):
        with pytest.raises(ReproError):
            DataAwareSplit(0)
