"""Tests for dataset generators and the loader."""

import pytest

from repro.common.errors import ReproError
from repro.datasets.loader import load_points
from repro.datasets.northeast import (
    NE_CARDINALITY,
    northeast_sample,
    northeast_surrogate,
)
from repro.datasets.synthetic import (
    clamp_unit,
    clustered_points,
    normalize_points,
    skewed_points,
    uniform_points,
)


def in_unit(points, dims):
    return all(
        len(point) == dims and all(0.0 <= v < 1.0 for v in point)
        for point in points
    )


class TestUniform:
    def test_count_range_and_determinism(self):
        first = uniform_points(500, dims=3, seed=1)
        second = uniform_points(500, dims=3, seed=1)
        assert first == second
        assert len(first) == 500
        assert in_unit(first, 3)

    def test_different_seeds_differ(self):
        assert uniform_points(10, seed=1) != uniform_points(10, seed=2)

    def test_negative_count_rejected(self):
        with pytest.raises(ReproError):
            uniform_points(-1)


class TestClustered:
    def test_mass_concentrates_at_centers(self):
        points = clustered_points(
            2000, [(0.2, 0.2), (0.8, 0.8)], [(0.01, 0.01), (0.01, 0.01)],
            seed=3,
        )
        near_any = sum(
            1
            for point in points
            if min(
                abs(point[0] - cx) + abs(point[1] - cy)
                for cx, cy in [(0.2, 0.2), (0.8, 0.8)]
            ) < 0.1
        )
        assert near_any > 1900
        assert in_unit(points, 2)

    def test_background_fraction(self):
        points = clustered_points(
            2000, [(0.5, 0.5)], [(0.001, 0.001)],
            background_fraction=0.5, seed=4,
        )
        far = sum(
            1
            for point in points
            if abs(point[0] - 0.5) + abs(point[1] - 0.5) > 0.1
        )
        assert 700 < far < 1300

    def test_validation(self):
        with pytest.raises(ReproError):
            clustered_points(10, [], [])
        with pytest.raises(ReproError):
            clustered_points(10, [(0.5, 0.5)], [])
        with pytest.raises(ReproError):
            clustered_points(
                10, [(0.5, 0.5)], [(0.1, 0.1)], background_fraction=2.0
            )


class TestSkewed:
    def test_skew_toward_origin(self):
        points = skewed_points(2000, exponent=4.0, seed=5)
        below = sum(1 for point in points if point[0] < 0.1)
        assert below > 1000
        assert in_unit(points, 2)

    def test_invalid_exponent(self):
        with pytest.raises(ReproError):
            skewed_points(10, exponent=0.0)


class TestNormalize:
    def test_min_max_into_unit(self):
        raw = [(-50.0, 1000.0), (0.0, 2000.0), (25.0, 1500.0)]
        normalized = normalize_points(raw)
        assert in_unit(normalized, 2)
        assert normalized[0][0] == 0.0
        assert normalized[1][1] == pytest.approx(clamp_unit(1.0))

    def test_degenerate_dimension(self):
        normalized = normalize_points([(5.0, 1.0), (5.0, 2.0)])
        assert in_unit(normalized, 2)

    def test_empty(self):
        assert normalize_points([]) == []


class TestClampUnit:
    def test_clamps(self):
        assert clamp_unit(-0.5) == 0.0
        assert clamp_unit(0.5) == 0.5
        assert clamp_unit(1.5) < 1.0


class TestNortheast:
    def test_default_cardinality_constant(self):
        assert NE_CARDINALITY == 123_593

    def test_sample_shape(self):
        points = northeast_sample(5000)
        assert len(points) == 5000
        assert in_unit(points, 2)

    def test_deterministic(self):
        assert northeast_surrogate(1000) == northeast_surrogate(1000)

    def test_metros_are_dense(self):
        """A large share of mass falls inside the three metro boxes."""
        points = northeast_sample(10_000)
        boxes = [
            ((0.10, 0.08), (0.36, 0.34)),  # Philadelphia
            ((0.36, 0.30), (0.66, 0.60)),  # New York
            ((0.66, 0.62), (0.92, 0.90)),  # Boston
        ]
        inside = sum(
            1
            for point in points
            if any(
                lo[0] <= point[0] <= hi[0] and lo[1] <= point[1] <= hi[1]
                for lo, hi in boxes
            )
        )
        assert inside > 8000

    def test_ocean_is_empty(self):
        """The south-east corner (the 'Atlantic') holds ~no points —
        the property that drives empty buckets in Fig. 6b."""
        points = northeast_sample(20_000)
        ocean = sum(
            1 for point in points if point[0] > 0.75 and point[1] < 0.35
        )
        assert ocean < 20


class TestLoader:
    def test_load_whitespace_file(self, tmp_path):
        path = tmp_path / "points.txt"
        path.write_text("# comment\n1.0 2.0\n3.0 4.0\n\n5.0 6.0\n")
        points = load_points(path)
        assert len(points) == 3
        assert in_unit(points, 2)

    def test_id_column_dropped(self, tmp_path):
        path = tmp_path / "points.txt"
        path.write_text("7 1.0 2.0\n8 3.0 4.0\n")
        points = load_points(path)
        assert len(points) == 2

    def test_unnormalized(self, tmp_path):
        path = tmp_path / "points.txt"
        path.write_text("0.25 0.5\n")
        assert load_points(path, normalize=False) == [(0.25, 0.5)]

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_points(tmp_path / "nope.txt")

    def test_bad_line_reported_with_number(self, tmp_path):
        path = tmp_path / "points.txt"
        path.write_text("1.0 2.0\nbogus line here maybe\n")
        with pytest.raises(ReproError, match=":2"):
            load_points(path)

    def test_too_few_columns(self, tmp_path):
        path = tmp_path / "points.txt"
        path.write_text("1.0\n")
        with pytest.raises(ReproError):
            load_points(path)
