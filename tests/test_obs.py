"""The observability plane: tracing, registry, and the metering fixes.

Four contracts pinned here:

* **Trace correctness** — the span tree of a seeded query mirrors the
  Algorithm 2/3 probe sequence (one ``round`` span per issued wave,
  per-round DHT-primitive counts summing to the metered lookups), and
  a disabled tracer leaves results bit-identical to the seed path.
* **Meter agreement** — per-round primitive counts in the trace equal
  the (bug-fixed) :class:`~repro.metrics.counters.CostMeter` deltas
  and, fault-free on a routed substrate, ``NetworkStats.rounds``.
* **Reset completeness** — ``reset()`` on every substrate and wrapper
  yields an all-zero snapshot (the ``backoff_time`` phase-leak class).
* **Rounds reconciliation** — ``RangeQueryResult.rounds``,
  ``DhtStats.batch_rounds`` and ``NetworkStats.rounds`` agree on
  degraded queries where retries add wire rounds inside one wave.
"""

import dataclasses
import io
import json

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.core.bulkload import bulk_load
from repro.core.index import MLightIndex
from repro.dht.api import DhtStats
from repro.dht.chord import ChordDht
from repro.dht.faults import FaultPlan, FaultyDht
from repro.dht.kademlia import KademliaDht
from repro.dht.localhash import LocalDht
from repro.dht.pastry import PastryDht
from repro.dht.retry import RetryingDht
from repro.experiments.trace_report import (
    critical_path,
    load_spans,
    render_report,
    render_timeline,
)
from repro.metrics.counters import CostDelta, CostMeter
from repro.net.stats import NetworkStats
from repro.obs.profile import span_timings, top_spans
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import JsonlTraceSink, Span, Tracer

SEED_POINTS = [((i % 17) / 17.0, (i % 13) / 13.0) for i in range(300)]
QUERY = ((0.1, 0.1), (0.7, 0.7))


def seeded_index(dht=None, **config_kwargs):
    dht = dht if dht is not None else LocalDht(16)
    config = IndexConfig(dims=2, **config_kwargs)
    index = MLightIndex(dht, config)
    for i, point in enumerate(SEED_POINTS):
        index.insert(point, i)
    return index


# ----------------------------------------------------------------------
# Tracer mechanics
# ----------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_and_close(self):
        tracer = Tracer()
        with tracer.span("query", "outer") as outer:
            with tracer.span("dht", "inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert tracer.spans[0].parent_id == outer.span_id
        assert outer.parent_id is None
        assert all(s.wall_end is not None for s in tracer.spans)

    def test_error_marks_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("dht", "get"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.status == "error"
        assert "boom" in span.attrs["error"]

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        tracer.event("orphan")  # outside any span: dropped
        with tracer.span("dht", "get"):
            tracer.event("retry", attempt=1)
        (span,) = tracer.spans
        assert [e["name"] for e in span.events] == ["retry"]
        assert span.events[0]["attrs"] == {"attempt": 1}

    def test_sink_receives_completion_order(self):
        emitted = []

        class Sink:
            def emit(self, span):
                emitted.append(span.name)

            def close(self):
                pass

        tracer = Tracer(sink=Sink(), keep=False)
        with tracer.span("query", "outer"):
            with tracer.span("dht", "inner"):
                pass
        assert emitted == ["inner", "outer"]
        assert tracer.spans == []  # keep=False retains nothing

    def test_export_refuses_open_spans(self, tmp_path):
        tracer = Tracer()
        with pytest.raises(ReproError):
            with tracer.span("query", "open"):
                tracer.export_jsonl(str(tmp_path / "t.jsonl"))

    def test_span_roundtrips_through_dict(self):
        span = Span(
            span_id=3, parent_id=1, kind="dht", name="get",
            wall_start=1.0, wall_end=2.5, sim_start=0.0, sim_end=4.0,
            attrs={"key": "ml:0011"},
            events=[{"name": "retry", "wall_offset": 0.1, "attrs": {}}],
        )
        clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert clone == span
        assert clone.wall_duration == 1.5
        assert clone.sim_duration == 4.0

    def test_attach_threads_whole_stack(self):
        chord = ChordDht.build(8)
        stack = RetryingDht(FaultyDht(chord, FaultPlan(0)))
        tracer = Tracer().attach(stack)
        assert stack.tracer is tracer
        assert stack.inner.tracer is tracer
        assert chord.tracer is tracer
        assert chord.network.tracer is tracer
        assert tracer.clock is chord.network.clock
        tracer.detach(stack)
        assert stack.tracer is None
        assert chord.network.tracer is None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_and_histogram_instruments(self):
        registry = MetricsRegistry()
        registry.counter("probes", kind="hint").inc(3)
        hist = registry.histogram("latency")
        for value in (4.0, 1.0, 3.0, 2.0):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["probes{kind=hint}"] == 3
        assert snap["latency.count"] == 4
        assert hist.mean == 2.5
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 4.0
        with pytest.raises(ReproError):
            registry.counter("probes", kind="hint").inc(-1)

    def test_source_must_expose_snapshot(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError):
            registry.register("bad", object())
        registry.register("dht", DhtStats())
        with pytest.raises(ReproError):
            registry.register("dht", DhtStats())

    def test_for_index_covers_stack_and_resets_everything(self):
        chord = ChordDht.build(8)
        index = seeded_index(
            RetryingDht(chord), cache_capacity=16
        )
        registry = MetricsRegistry.for_index(index)
        before = registry.snapshot()
        index.range_query(QUERY)
        delta = registry.delta(before)
        assert delta["dht.lookups"] > 0
        assert delta["net.rounds"] > 0
        assert "cache.size" in registry.snapshot()
        registry.reset()
        after = registry.snapshot()
        leaked = {
            key: value
            for key, value in after.items()
            if value and not key.startswith("cache.")
        }
        assert leaked == {}  # gauges excepted, reset means all-zero

    def test_observe_span_accumulates(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("dht", "get"):
            pass
        snap = registry.snapshot()
        assert snap["spans{kind=dht}"] == 1
        assert snap["span_seconds{kind=dht,name=get}.count"] == 1


# ----------------------------------------------------------------------
# Reset completeness (the phase-leak bugfix)
# ----------------------------------------------------------------------


WRAPPED_SUBSTRATES = [
    ("local", lambda: LocalDht(8)),
    ("chord", lambda: ChordDht.build(8)),
    ("pastry", lambda: PastryDht.build(8)),
    ("kademlia", lambda: KademliaDht.build(8)),
    ("retrying", lambda: RetryingDht(LocalDht(8), backoff_base=0.5)),
    (
        "faulty",
        lambda: FaultyDht(LocalDht(8), FaultPlan(0, slow_rate=0.3)),
    ),
    (
        "retrying-faulty-chord",
        lambda: RetryingDht(
            FaultyDht(ChordDht.build(8), FaultPlan(0, drop_rate=0.3)),
            backoff_base=0.5,
        ),
    ),
]


class TestResetCompleteness:
    @pytest.mark.parametrize(
        "name,factory",
        WRAPPED_SUBSTRATES,
        ids=[name for name, _ in WRAPPED_SUBSTRATES],
    )
    def test_reset_zeroes_every_snapshot_key(self, name, factory):
        dht = factory()
        for i in range(30):
            try:
                dht.put(f"k{i}", i)
                dht.get(f"k{i}")
                dht.get_many([f"k{i}", f"k{i - 1}"])
            except Exception:
                pass  # injected faults may exhaust the retry budget
        assert any(dht.stats.snapshot().values())
        dht.stats.reset()
        zeroed = dht.stats.snapshot()
        assert all(value == 0 for value in zeroed.values()), zeroed

    def test_backoff_time_lives_on_stats(self):
        # The concrete leak: backoff_time used to be an instance
        # attribute outside DhtStats, surviving stats.reset() across
        # experiment phases.
        dht = RetryingDht(
            FaultyDht(LocalDht(8), FaultPlan(0, drop_rate=0.6)),
            attempts=4,
            backoff_base=0.5,
        )
        for i in range(20):
            try:
                dht.get(f"k{i}")
            except Exception:
                pass
        assert dht.backoff_time > 0
        assert dht.stats.snapshot()["backoff_time"] == dht.backoff_time
        dht.stats.reset()
        assert dht.backoff_time == 0.0

    def test_network_stats_reset_covers_per_type(self):
        stats = NetworkStats()
        stats.record_message("get", 10)
        stats.record_round(3, 1.5)
        stats.record_drop()
        stats.record_rpc()
        assert stats.per_type == {"get": 1}
        stats.reset()
        assert all(value == 0 for value in stats.snapshot().values())
        assert stats.per_type == {}

    def test_new_dhtstats_counter_cannot_be_missed(self):
        # snapshot()/reset() are derived from dataclasses.fields(), so
        # the keysets agree by construction.
        stats = DhtStats()
        snap = stats.snapshot()
        assert set(snap) == {
            f.name for f in dataclasses.fields(DhtStats)
        }


# ----------------------------------------------------------------------
# CostMeter full-keyset delta (the under-reporting bugfix)
# ----------------------------------------------------------------------


class TestCostMeterKeyset:
    def test_delta_covers_full_snapshot_keyset(self):
        dht = LocalDht(8)
        with CostMeter(dht) as meter:
            dht.put_many([("a", 1), ("b", 2)])
            dht.get_many(["a", "b"])
        assert set(meter.delta) == set(dht.stats.snapshot())
        assert meter.delta.batch_rounds == 2
        assert meter.delta.batch_ops == 4
        assert meter.delta.lookups == 4

    def test_retry_and_fault_counters_metered(self):
        dht = RetryingDht(
            FaultyDht(LocalDht(8), FaultPlan(0, drop_rate=0.5)),
            attempts=5,
            backoff_base=0.25,
        )
        with CostMeter(dht) as meter:
            for i in range(10):
                try:
                    dht.get(f"k{i}")
                except Exception:
                    pass
        assert meter.delta.retries > 0
        assert meter.delta.faults_dropped > 0
        assert meter.delta.backoff_waits > 0
        assert meter.delta.backoff_time > 0

    def test_classic_positional_compatibility(self):
        a = CostDelta(1, 2, 3, 4, 5, 6)
        b = CostDelta(10, 20, 30, 40, 50, 60)
        total = a + b
        assert total.lookups == 11
        assert total.records_moved == 22
        assert total.gets == 33
        assert total.puts == 44
        assert total.removes == 55
        assert total.hops == 66
        assert total.retries == 0  # untouched counters read zero
        with pytest.raises(AttributeError):
            total.not_a_counter


# ----------------------------------------------------------------------
# Trace correctness on seeded queries
# ----------------------------------------------------------------------


class TestTraceShape:
    def test_range_span_tree_matches_probe_sequence(self):
        index = seeded_index(tracing=True)
        tracer = index.tracer
        tracer.clear()
        result = index.range_query(QUERY)
        (query_span,) = [
            s for s in tracer.roots() if s.kind == "query"
        ]
        rounds = [
            s for s in tracer.children_of(query_span) if s.kind == "round"
        ]
        # One round span per issued wave (Algorithms 2/3 recursion
        # levels plus fallback-chain steps).
        assert len(rounds) == result.rounds
        # Per-round primitive counts sum to the metered lookups.
        probed = 0
        for round_span in rounds:
            for dht_span in tracer.children_of(round_span):
                assert dht_span.kind == "dht"
                probed += dht_span.attrs.get("count", 1)
        assert probed == result.lookups
        assert query_span.attrs["lookups"] == result.lookups
        assert query_span.attrs["records"] == len(result.records)

    def test_disabled_tracing_is_bit_identical_to_seed(self):
        traced = seeded_index(tracing=True)
        plain = seeded_index(tracing=False)
        assert plain.tracer is None
        r_traced = traced.range_query(QUERY)
        r_plain = plain.range_query(QUERY)
        assert r_traced == r_plain
        assert plain.dht.stats.snapshot() == traced.dht.stats.snapshot()
        assert traced.knn((0.4, 0.4), 5) == plain.knn((0.4, 0.4), 5)
        assert plain.dht.stats.snapshot() == traced.dht.stats.snapshot()

    def test_lookup_span_records_cache_hint_events(self):
        index = seeded_index(cache_capacity=32, tracing=True)
        point = SEED_POINTS[0]
        index.lookup(point)  # warm the cache
        index.tracer.clear()
        index.lookup(point)  # hinted path
        (span,) = [s for s in index.tracer.roots() if s.name == "lookup"]
        assert span.attrs["probes"] == 1
        hits = [
            c
            for c in index.tracer.children_of(span)
            if c.kind == "dht"
        ]
        assert len(hits) == 1

    def test_jsonl_roundtrip_through_trace_report(self, tmp_path):
        index = seeded_index(tracing=True)
        index.tracer.clear()
        index.range_query(QUERY)
        path = str(tmp_path / "trace.jsonl")
        count = index.tracer.export_jsonl(path)
        spans = load_spans(path)
        assert len(spans) == count
        assert spans == index.tracer.spans
        report = render_report(spans)
        assert "query:range" in report
        assert "Critical path" in report
        timeline = render_timeline(spans)
        assert "round:batched_round" in timeline

    def test_streaming_sink_matches_retained_spans(self):
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        tracer = Tracer(sink=sink)
        dht = LocalDht(8)
        tracer.attach(dht)
        dht.put("x", 1)
        dht.get("x")
        sink.close()
        streamed = [
            Span.from_dict(json.loads(line))
            for line in buffer.getvalue().splitlines()
        ]
        assert streamed == tracer.spans

    def test_profile_self_time_subtracts_children(self):
        tracer = Tracer()
        with tracer.span("query", "outer"):
            with tracer.span("dht", "inner"):
                pass
        timings = {
            t.span.name: t for t in span_timings(tracer.spans)
        }
        outer = timings["outer"]
        inner = timings["inner"]
        assert outer.wall_self <= outer.wall_total
        assert outer.wall_self == pytest.approx(
            outer.wall_total - inner.wall_total
        )
        assert top_spans(tracer.spans, 1)[0].span.name in {
            "outer", "inner",
        }


# ----------------------------------------------------------------------
# Acceptance: trace counts == CostMeter deltas == NetworkStats.rounds
# ----------------------------------------------------------------------


class TestMeterAgreement:
    def test_trace_equals_meters_on_routed_substrate(self):
        chord = ChordDht.build(12)
        index = seeded_index(chord, tracing=True)
        tracer = index.tracer
        tracer.clear()
        net_before = chord.network.stats.snapshot()
        with CostMeter(index.dht) as meter:
            result = index.range_query(QUERY)
        net_delta = {
            key: value - net_before[key]
            for key, value in chord.network.stats.snapshot().items()
        }
        (query_span,) = [s for s in tracer.roots() if s.kind == "query"]
        rounds = [
            s for s in tracer.children_of(query_span) if s.kind == "round"
        ]
        per_round = [
            sum(
                c.attrs.get("count", 1)
                for c in tracer.children_of(r)
                if c.kind == "dht"
            )
            for r in rounds
        ]
        assert sum(per_round) == meter.delta.lookups == result.lookups
        assert len(rounds) == result.rounds
        # Fault-free on the batched plane: every wave is exactly one
        # batch round and one simulated message round.
        assert meter.delta.batch_rounds == result.batch_rounds
        assert net_delta["rounds"] == result.batch_rounds
        net_spans = [s for s in tracer.spans if s.kind == "net"]
        assert len(net_spans) == net_delta["rounds"]


# ----------------------------------------------------------------------
# Rounds reconciliation under faults (the disagreement bugfix)
# ----------------------------------------------------------------------


class TestRoundsReconciliation:
    def make_faulty_index(self, drop_rate=0.25, seed=3, **config_kwargs):
        chord = ChordDht.build(12)
        stack = RetryingDht(
            FaultyDht(chord, FaultPlan(seed, drop_rate=drop_rate)),
            attempts=3,
        )
        config = IndexConfig(dims=2, **config_kwargs)
        faulty = stack.inner
        with faulty.suspended():
            dht_points = list(SEED_POINTS)
            bulk_load(chord, dht_points, config)
            index = MLightIndex(stack, config)
        return index, chord

    def test_retry_rounds_reconciled_into_result(self):
        index, chord = self.make_faulty_index(cache_capacity=16)
        stats = index.dht.stats
        found_retry_wave = False
        for seed_query in range(8):
            lo = 0.05 * seed_query
            before_batch = stats.batch_rounds
            before_net = chord.network.stats.rounds
            result = index.range_query(((lo, lo), (lo + 0.5, lo + 0.5)))
            d_batch = stats.batch_rounds - before_batch
            d_net = chord.network.stats.rounds - before_net
            # The reconciliation contract: the result's latency meter
            # counts every wire round, retries included.
            assert result.batch_rounds == d_batch
            assert result.rounds == max(
                result.rounds, result.batch_rounds
            )
            assert result.rounds >= result.batch_rounds
            # A sub-batch killed entirely at the injection boundary
            # never reaches the wire, so net rounds can only lag.
            assert d_net <= d_batch
            if stats.retries and result.rounds > 0:
                found_retry_wave = found_retry_wave or (
                    d_batch > 0 and result.rounds == d_batch
                )
        assert stats.retries > 0  # the sweep actually exercised retries
        assert found_retry_wave

    def test_degraded_query_with_dead_cache_hint(self):
        # The original disagreement: a cached hint pointing at a dead
        # bucket is evicted mid-round and the lookup re-routes, adding
        # a wave — rounds, batch_rounds and net rounds must still be
        # reconciled rather than drifting apart.
        chord = ChordDht.build(12)
        config = IndexConfig(dims=2, cache_capacity=16)
        bulk_load(chord, list(SEED_POINTS), config)
        probe = MLightIndex(chord, config)
        target = probe.lookup((0.35, 0.45))  # warms the cache
        from repro.core.keys import bucket_key
        from repro.core.naming import naming_function

        dead_key = bucket_key(
            naming_function(target.bucket.label, config.dims)
        )
        stack = RetryingDht(
            FaultyDht(
                chord, FaultPlan(0, dead_keys=[dead_key])
            ),
            attempts=2,
        )
        index = MLightIndex(stack, config, cache=probe.cache)
        stats = index.dht.stats
        before_batch = stats.batch_rounds
        result = index.range_query(((0.3, 0.4), (0.4, 0.5)))
        d_batch = stats.batch_rounds - before_batch
        assert result.batch_rounds == d_batch
        assert result.rounds >= result.batch_rounds
        # The hinted probe died; coverage of its subregion is either
        # re-proven through other leaves or reported unresolved —
        # never silently dropped.
        if not result.complete:
            assert result.unresolved

    def test_fault_free_equality_is_preserved(self):
        # The reconciliation must not disturb the seed contract:
        # fault-free batched queries satisfy rounds == batch_rounds ==
        # simulated rounds exactly.
        chord = ChordDht.build(12)
        index = seeded_index(chord)
        stats = index.dht.stats
        before_batch = stats.batch_rounds
        before_net = chord.network.stats.rounds
        result = index.range_query(QUERY)
        assert result.batch_rounds == stats.batch_rounds - before_batch
        assert result.rounds == result.batch_rounds
        assert (
            chord.network.stats.rounds - before_net == result.batch_rounds
        )


# ----------------------------------------------------------------------
# Critical path rendering
# ----------------------------------------------------------------------


class TestCriticalPath:
    def test_critical_path_follows_dominant_child(self):
        index = seeded_index(ChordDht.build(8), tracing=True)
        tracer = index.tracer
        tracer.clear()
        index.range_query(QUERY)
        (root,) = [s for s in tracer.roots() if s.kind == "query"]
        chain = critical_path(tracer.spans, root)
        assert chain[0] is root
        kinds = [span.kind for span in chain]
        assert kinds == sorted(
            kinds, key=["query", "update", "round", "dht", "net"].index
        )
        assert chain[-1].kind == "net"


# ----------------------------------------------------------------------
# Distributed-runtime fault accounting (the forward_all audit)
# ----------------------------------------------------------------------


class TestDistributedFaultAccounting:
    """The peer-forwarding runtime under FaultyDht + RetryingDht.

    The audited drift: ``forward_all`` charged a flat ``rounds + 1``
    per branch while the engine reconciles retry waves into
    ``batch_rounds`` — under faults the two execution models' round
    meters drifted apart.  The fix makes each forwarding site account
    its own retry rounds locally (``retries`` delta on the sequential
    hop, ``batch_rounds`` delta on the batched step) and *never*
    applies the engine's global ``max(rounds, batch_rounds)``, which
    would inflate fault-free sibling batches.
    """

    def make_stack(self, drop_rate=0.0, seed=3, attempts=3, dead_keys=()):
        from repro.core.distributed import DistributedQueryRuntime

        chord = ChordDht.build(12)
        stack = RetryingDht(
            FaultyDht(
                chord,
                FaultPlan(seed, drop_rate=drop_rate, dead_keys=dead_keys),
            ),
            attempts=attempts,
        )
        config = IndexConfig(
            dims=2, split_threshold=10, merge_threshold=5
        )
        with stack.inner.suspended():
            index = MLightIndex(stack, config)
            for i, point in enumerate(SEED_POINTS):
                index.insert(point, i)
        runtime = DistributedQueryRuntime(stack, 2, config.max_depth)
        return index, runtime, stack, chord

    def queries(self):
        from repro.common.geometry import Region

        return [
            Region(
                (0.05 * i, 0.05 * i), (0.05 * i + 0.5, 0.05 * i + 0.5)
            )
            for i in range(8)
        ]

    def test_wrapper_chain_construction_and_faultfree_equality(self):
        """A runtime built over the full wrapper stack behaves exactly
        like one built on the bare substrate when no faults fire."""
        index, runtime, stack, chord = self.make_stack(drop_rate=0.0)
        for query in self.queries():
            engine_result = index.range_query(query)
            result = runtime.query(query)
            assert result.complete
            assert sorted(r.key for r in result.records) == sorted(
                r.key for r in engine_result.records
            )
            assert result.lookups == engine_result.lookups
            assert result.rounds == engine_result.rounds

    def test_batch_rounds_published_equals_stats_delta(self):
        """``result.batch_rounds`` is the whole-query stats delta —
        retry waves included — not a per-branch reconstruction."""
        index, runtime, stack, chord = self.make_stack(drop_rate=0.25)
        stats = stack.stats
        for query in self.queries():
            before = stats.batch_rounds
            result = runtime.query(query)
            assert result.batch_rounds == stats.batch_rounds - before
        assert stats.retries > 0  # the sweep actually exercised faults

    def test_rounds_never_below_faultfree_baseline(self):
        """Retries only ever add wire rounds to the critical path; a
        fully-resolved faulty query can't report fewer rounds than the
        fault-free run of the same query."""
        index, runtime, stack, chord = self.make_stack(drop_rate=0.25)
        clean_index, clean_runtime, _, _ = self.make_stack(drop_rate=0.0)
        inflated = 0
        for query in self.queries():
            clean = clean_runtime.query(query)
            result = runtime.query(query)
            if not result.complete:
                continue
            assert sorted(r.key for r in result.records) == sorted(
                r.key for r in clean.records
            )
            assert result.rounds >= clean.rounds
            if result.rounds > clean.rounds:
                inflated += 1
        assert stack.stats.retries > 0
        assert inflated > 0  # at least one retry wave hit a query path

    def test_unreachable_owner_degrades_to_unresolved(self):
        """An owner dead past the retry budget degrades its subregion
        into ``result.unresolved`` instead of aborting the query."""
        from repro.core.keys import bucket_key
        from repro.core.naming import naming_function

        from repro.common.geometry import Region

        wide = Region((0.1, 0.1), (0.9, 0.9))
        index, runtime, stack, chord = self.make_stack(drop_rate=0.0)
        probe = runtime.query(wide)
        victim_label = sorted(probe.visited_leaves)[-1]
        dead_key = bucket_key(naming_function(victim_label, 2))
        index2, runtime2, stack2, chord2 = self.make_stack(
            dead_keys=[dead_key], attempts=2
        )
        result = runtime2.query(wide)
        assert not result.complete
        assert result.unresolved
        assert victim_label not in result.visited_leaves
        # Everything outside the dead subtree still answered: the
        # degraded answer is a strict, non-empty subset of the
        # complete one.
        survivors = sorted(r.key for r in result.records)
        complete = sorted(r.key for r in probe.records)
        assert 0 < len(survivors) < len(complete)
        assert set(survivors) <= set(complete)
