"""One-dimensional operation (the LHT special case).

m-LIGHT generalises the authors' earlier LHT index, which handled only
1-D data (Section 2.1).  Setting ``dims=1`` must therefore recover a
fully working LHT: the virtual root is a single ``'0'``, the naming
function reduces to its 1-D form (compare bit ``i`` with bit ``i-1``),
and interval queries behave like the paper's motivating "published
during 2007 and 2008" predicate.
"""

import random

from repro.common.config import IndexConfig
from repro.common.geometry import Region
from repro.common.labels import root_label, virtual_root
from repro.core.index import MLightIndex
from repro.core.naming import naming_function
from repro.dht.localhash import LocalDht
from tests.conftest import brute_force_range


def make_index(**overrides):
    defaults = dict(
        dims=1, max_depth=16, split_threshold=8, merge_threshold=4
    )
    defaults.update(overrides)
    return MLightIndex(LocalDht(16), IndexConfig(**defaults))


class TestOneDimensionalLabels:
    def test_roots(self):
        assert virtual_root(1) == "0"
        assert root_label(1) == "01"

    def test_naming_compares_adjacent_bits(self):
        # In 1-D, fmd strips the last bit while it equals the previous
        # bit: runs of equal bits collapse.
        assert naming_function("01", 1) == "0"
        assert naming_function("0111", 1) == "0"
        assert naming_function("01110", 1) == "0111"
        assert naming_function("011100", 1) == "0111"
        assert naming_function("0110", 1) == "011"

    def test_bijection_on_a_small_tree(self):
        # Leaves of the tree {010, 0110, 0111}:
        leaves = ["010", "0110", "0111"]
        names = {naming_function(leaf, 1) for leaf in leaves}
        assert names == {"0", "01", "011"}


class TestOneDimensionalIndex:
    def test_interval_queries(self):
        rng = random.Random(0)
        index = make_index()
        values = [(rng.random(),) for _ in range(400)]
        for value in values:
            index.insert(value)
        for _ in range(15):
            low = rng.random() * 0.8
            high = low + rng.random() * 0.2
            query = Region((low,), (min(1.0, high),))
            got = sorted(r.key for r in index.range_query(query).records)
            assert got == brute_force_range(values, query)

    def test_years_scenario(self):
        """The paper's 'published during 2007 and 2008', 1-D version."""
        index = make_index()
        year_domain = (1990.0, 2010.0)

        def norm(year):
            return (year - year_domain[0]) / (
                year_domain[1] - year_domain[0]
            )

        for year in (1995, 2003, 2007, 2007.5, 2008, 2009):
            index.insert((norm(year),), value=year)
        result = index.range_query(Region((norm(2007),), (norm(2008),)))
        assert sorted(r.value for r in result.records) == [2007, 2007.5, 2008]

    def test_lookup_and_knn(self):
        rng = random.Random(1)
        index = make_index()
        values = sorted((rng.random(),) for _ in range(200))
        for value in values:
            index.insert(value)
        target = (0.5,)
        looked = index.lookup(target)
        assert looked.bucket.covers(target)
        nearest = index.knn(target, 3)
        brute = sorted(values, key=lambda v: abs(v[0] - 0.5))[:3]
        assert [n.record.key for n in nearest.neighbors] == brute

    def test_structure_invariants_through_churny_workload(self):
        rng = random.Random(2)
        index = make_index(split_threshold=5, merge_threshold=3)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.45:
                victim = live.pop(rng.randrange(len(live)))
                assert index.delete(victim)
            else:
                value = (rng.random(),)
                live.append(value)
                index.insert(value)
        index.check_invariants()
        assert index.total_records() == len(live)
