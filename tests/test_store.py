"""The record-store plane: backends, Rows interchange, codec, wiring.

The seam contract: every registered :class:`RecordStore` backend is an
exact re-expression of the naive record list — same answers, same
insertion order, bit-identical floats — and the codec round-trips any
bucket through its wire bytes without changing either.
"""

from __future__ import annotations

import pickle

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import UnknownStoreError
from repro.common.geometry import Region
from repro.common.labels import interleave, root_label
from repro.core import codec, npstore
from repro.core.bucket import LeafBucket
from repro.core.records import Record
from repro.core.store import (
    DEFAULT_STORE,
    Rows,
    create_store,
    register_store,
    store_backends,
)

BACKENDS = ["list", "columnar", "numpy"]


def _records(rng, dims, count):
    return [
        Record(tuple(rng.random() for _ in range(dims)), index)
        for index in range(count)
    ]


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(BACKENDS) <= set(store_backends())
        assert DEFAULT_STORE in store_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(UnknownStoreError):
            create_store("bogus", 2, 0)
        with pytest.raises(UnknownStoreError):
            IndexConfig(store="bogus")

    def test_unknown_store_error_is_value_error(self):
        # Mirrors UnknownRuntimeError: callers catching ValueError for
        # bad config strings keep working.
        assert issubclass(UnknownStoreError, ValueError)

    def test_register_store_extends_config_surface(self):
        from repro.core import store as store_mod

        def factory(dims, sort_dim, source=None):
            return store_mod.ListStore(dims, sort_dim, source or ())

        register_store("test-custom", factory)
        try:
            assert "test-custom" in store_backends()
            config = IndexConfig(store="test-custom")
            assert config.store == "test-custom"
            bucket = LeafBucket("00", 2, store="test-custom")
            bucket.add(Record((0.5, 0.5)))
            assert bucket.load == 1
        finally:
            store_mod._STORES.pop("test-custom", None)

    def test_empty_kind_rejected(self):
        with pytest.raises(UnknownStoreError):
            register_store("", lambda *a: None)


class TestRowsInterchange:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_to_rows_from_rows_roundtrip(self, kind, rng):
        records = _records(rng, 3, 40)
        store = create_store(kind, 3, 0, records)
        rows = store.to_rows()
        assert len(rows) == 40
        rebuilt = create_store(kind, 3, 0, rows)
        assert rebuilt.records() == records

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_none_values_travel_as_sentinel(self, kind, rng):
        points = [
            Record(tuple(rng.random() for _ in range(2))) for _ in range(10)
        ]
        store = create_store(kind, 2, 0, points)
        rows = store.to_rows()
        assert rows.values is None  # all-None payloads collapse
        assert store.payload_values() is None

    def test_rows_partition_matches_record_partition(self, rng):
        records = _records(rng, 2, 60)
        rows = Rows.from_records(records, 2)
        midpoint = 0.5
        low_rows, high_rows = rows.partition(0, midpoint)
        low_ref = [r for r in records if r.key[0] < midpoint]
        high_ref = [r for r in records if r.key[0] >= midpoint]
        assert low_rows.to_records() == low_ref
        assert high_rows.to_records() == high_ref


class TestBackendEquivalence:
    @pytest.mark.parametrize("kind", BACKENDS)
    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_matching_identical_to_list_oracle(self, kind, dims, rng):
        for _ in range(5):
            records = _records(rng, dims, rng.randrange(0, 100))
            oracle = create_store("list", dims, dims - 1, list(records))
            store = create_store(kind, dims, dims - 1, list(records))
            for _ in range(6):
                bounds = [
                    sorted((rng.random(), rng.random())) for _ in range(dims)
                ]
                lows = tuple(low for low, _ in bounds)
                highs = tuple(high for _, high in bounds)
                assert store.matching(lows, highs) == oracle.matching(
                    lows, highs
                )

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_mutations_bump_generation(self, kind):
        store = create_store(kind, 2, 0)
        assert store.generation == 0
        record = Record((0.5, 0.5), "x")
        store.add(record)
        assert store.generation == 1
        store.remove(record)
        assert store.generation == 2

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_remove_missing_returns_false_without_generation_bump(self, kind):
        store = create_store(kind, 2, 0)
        store.add(Record((0.5, 0.5)))
        generation = store.generation
        assert store.remove(Record((0.1, 0.1))) is False
        assert store.generation == generation  # nothing changed


@pytest.mark.skipif(not npstore.HAVE_NUMPY, reason="numpy not installed")
class TestNumpyStore:
    def test_bulk_rows_never_materialize_records(self, rng):
        import numpy as np

        points = np.array([[rng.random(), rng.random()] for _ in range(50)])
        rows = npstore.rows_from_matrix(points, 2)
        store = create_store("numpy", 2, 0, rows)
        assert store._records is None  # columns-only mode
        lows, highs = (0.2, 0.2), (0.8, 0.8)
        got = store.matching(lows, highs)
        expected = [
            Record((float(x), float(y)))
            for x, y in points
            if 0.2 <= x <= 0.8 and 0.2 <= y <= 0.8
        ]
        assert got == expected

    def test_batch_interleave_matches_scalar(self, rng):
        import numpy as np

        points = np.array([[rng.random(), rng.random()] for _ in range(64)])
        for depth in (0, 1, 7, 16):
            batched = npstore.batch_interleave(points, depth)
            scalar = [
                interleave((float(x), float(y)), depth) for x, y in points
            ]
            assert batched == scalar

    def test_validate_columns_rejects_out_of_range(self):
        import numpy as np

        with pytest.raises(Exception):
            npstore.validate_columns([np.array([0.5, 1.0])])
        with pytest.raises(Exception):
            npstore.validate_columns([np.array([-0.1, 0.5])])


class TestNumpyFallback:
    def test_missing_numpy_degrades_to_columnar(self, monkeypatch):
        monkeypatch.setattr(npstore, "HAVE_NUMPY", False)
        monkeypatch.setattr(npstore, "_warned_missing", False)
        with pytest.warns(RuntimeWarning, match="numpy"):
            store = create_store("numpy", 2, 0)
        assert store.kind == "columnar"
        # IndexConfig(store="numpy") stays valid — the backend degrades,
        # the config does not reject.
        assert IndexConfig(store="numpy").store == "numpy"


class TestCodec:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_roundtrip_bit_identical(self, kind, rng):
        bucket = LeafBucket("0010", 2, _records(rng, 2, 30), store=kind)
        data = codec.encode_bucket(bucket)
        assert data[:4] == codec.CODEC_MAGIC
        assert len(data) == codec.encoded_bucket_size(bucket)
        back = codec.decode_bucket(data)
        assert back.label == bucket.label
        assert back.records == bucket.records  # floats bit-identical

    def test_all_none_values_skip_the_pickle_section(self):
        points = LeafBucket(
            "00", 2, [Record((0.25, 0.75)), Record((0.5, 0.5))]
        )
        tagged = LeafBucket(
            "00", 2, [Record((0.25, 0.75), "a"), Record((0.5, 0.5), "b")]
        )
        assert codec.encoded_bucket_size(points) < codec.encoded_bucket_size(
            tagged
        )

    def test_pickle_frames_carry_codec_bytes(self, rng):
        bucket = LeafBucket("001", 2, _records(rng, 2, 8))
        blob = pickle.dumps(bucket, protocol=pickle.HIGHEST_PROTOCOL)
        assert codec.CODEC_MAGIC in blob  # __reduce__ embeds the codec
        clone = pickle.loads(blob)
        assert clone == bucket
        query = Region((0.0, 0.0), (1.0, 1.0))
        assert clone.matching(query) == bucket.matching(query)

    def test_truncated_and_bad_magic_rejected(self, rng):
        data = codec.encode_bucket(LeafBucket("00", 2, _records(rng, 2, 4)))
        with pytest.raises(codec.CodecError):
            codec.decode_bucket(b"XXXX" + data[4:])
        with pytest.raises(codec.CodecError):
            codec.decode_bucket(data[: len(data) // 2])

    def test_numpy_bucket_decodes_without_numpy(self, rng, monkeypatch):
        bucket = LeafBucket("00", 2, _records(rng, 2, 12), store="numpy")
        data = codec.encode_bucket(bucket)
        monkeypatch.setattr(npstore, "HAVE_NUMPY", False)
        monkeypatch.setattr(npstore, "_warned_missing", True)
        back = codec.decode_bucket(data)
        assert back.records == bucket.records


class TestByteAccountingAgreement:
    """Sim and service substrates price the same trace identically."""

    def _trace(self):
        rng = __import__("random").Random(11)
        trace = []
        for index in range(12):
            bucket = LeafBucket(
                "00", 2, _records(rng, 2, rng.randrange(0, 25))
            )
            trace.append((f"key-{index:02d}", bucket))
        return trace

    @staticmethod
    def _primitive_bytes(stats, put_type, get_type):
        by_type = stats.bytes_per_type
        return {
            "put": by_type.get(put_type, 0),
            "put:reply": by_type.get(put_type + ":reply", 0),
            "get": by_type.get(get_type, 0),
            "get:reply": by_type.get(get_type + ":reply", 0),
        }

    def _service_counts(self, trace):
        from repro.runtime import RuntimeConfig, create_dht

        with create_dht(RuntimeConfig(kind="asyncio", n_peers=1)) as dht:
            for key, bucket in trace:
                dht.put(key, bucket)
            for key, _ in trace:
                dht.get(key)
            stats = dht.network.stats
            return (
                self._primitive_bytes(stats, "put", "get"),
                stats.payload_bytes,
            )

    def _sim_counts(self, trace):
        from repro.dht.chord import ChordDht

        dht = ChordDht.build(1)
        for key, bucket in trace:
            dht.put(key, bucket)
        for key, _ in trace:
            dht.get(key)
        stats = dht.network.stats
        return (
            self._primitive_bytes(stats, "store_put", "store_get"),
            stats.payload_bytes,
        )

    def test_sim_and_service_bytes_agree_on_a_put_get_trace(self):
        trace = self._trace()
        sim_bytes, sim_payload = self._sim_counts(trace)
        svc_bytes, svc_payload = self._service_counts(trace)
        assert sim_payload > 0
        assert all(value > 0 for value in sim_bytes.values())
        # Both substrates price each primitive's request and reply with
        # the shared codec, so the data-plane frame bytes agree to the
        # byte.  (Total bytes_sent additionally carries the simulated
        # overlay's routing rpc replies, which a wire client does not
        # send — the per-type split is the comparable surface.)
        assert sim_bytes == svc_bytes
        assert sim_payload == svc_payload

    def test_payload_bytes_are_codec_exact(self):
        from repro.dht.chord import ChordDht

        trace = self._trace()
        dht = ChordDht.build(4)
        for key, bucket in trace:
            dht.put(key, bucket)
        expected = sum(
            codec.encoded_bucket_size(bucket) for _, bucket in trace
        )
        assert dht.network.stats.payload_bytes == expected


class TestEncodedPeerStore:
    def test_chord_encoded_storage_roundtrip(self, rng):
        from repro.dht.chord import ChordDht

        dht = ChordDht.build(4, encoded_storage=True)
        bucket = LeafBucket(root_label(2), 2, _records(rng, 2, 20))
        dht.put("k", bucket)
        got = dht.get("k")
        assert got == bucket
        query = Region((0.0, 0.0), (1.0, 1.0))
        assert got.matching(query) == bucket.matching(query)


class TestBucketStoreSelection:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_bucket_adopts_configured_backend(self, kind, rng):
        bucket = LeafBucket(root_label(2), 2, store=kind)
        resolved = "columnar" if (
            kind == "numpy" and not npstore.HAVE_NUMPY
        ) else kind
        assert bucket.store.kind == resolved
        for record in _records(rng, 2, 30):
            bucket.add(record)
        query = Region((0.2, 0.2), (0.8, 0.8))
        assert bucket.matching(query) == bucket.matching_naive(query)

    def test_records_property_reflects_store(self, rng):
        bucket = LeafBucket(root_label(2), 2, store="numpy")
        record = Record((0.3, 0.7), "v")
        bucket.add(record)
        assert bucket.records == [record]
        bucket.remove(record)
        assert bucket.records == []
