"""Unit and property tests for the label algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import InvalidLabelError, InvalidPointError
from repro.common.labels import (
    ancestors,
    branch_nodes_between,
    candidate_string,
    children,
    common_prefix,
    coordinate_bits,
    interleave,
    is_valid_label,
    label_depth,
    parent,
    root_label,
    sibling,
    split_dimension,
    virtual_root,
)
from tests.conftest import labels_strategy


class TestRoots:
    def test_virtual_root_2d(self):
        assert virtual_root(2) == "00"

    def test_root_label_2d_matches_paper(self):
        # "# = 0...01" and "root label # has 3 bits" for 2-D data.
        assert root_label(2) == "001"

    def test_root_label_3d(self):
        assert root_label(3) == "0001"

    def test_dims_must_be_positive(self):
        with pytest.raises(InvalidLabelError):
            virtual_root(0)


class TestValidity:
    @pytest.mark.parametrize("label", ["00", "001", "0010", "001101111"])
    def test_valid_2d(self, label):
        assert is_valid_label(label, 2)

    @pytest.mark.parametrize("label", ["", "0", "01", "000", "0a1", "101"])
    def test_invalid_2d(self, label):
        assert not is_valid_label(label, 2)

    def test_virtual_root_is_valid(self):
        assert is_valid_label("000", 3)


class TestNavigation:
    def test_depth_of_root_is_zero(self):
        assert label_depth(root_label(2), 2) == 0

    def test_depth_of_virtual_root(self):
        assert label_depth(virtual_root(2), 2) == -1

    def test_parent_of_root_is_virtual_root(self):
        assert parent(root_label(2), 2) == virtual_root(2)

    def test_virtual_root_has_no_parent(self):
        with pytest.raises(InvalidLabelError):
            parent(virtual_root(2), 2)

    def test_children(self):
        assert children("001", 2) == ("0010", "0011")

    def test_virtual_root_children_rejected(self):
        with pytest.raises(InvalidLabelError):
            children(virtual_root(2), 2)

    def test_sibling(self):
        assert sibling("0010", 2) == "0011"
        assert sibling("001101", 2) == "001100"

    def test_root_has_no_sibling(self):
        with pytest.raises(InvalidLabelError):
            sibling(root_label(2), 2)

    def test_ancestors_order(self):
        assert list(ancestors("00101", 2)) == ["0010", "001", "00"]

    def test_split_dimension_cycles(self):
        assert split_dimension("001", 2) == 0
        assert split_dimension("0010", 2) == 1
        assert split_dimension("00101", 2) == 0
        assert split_dimension("0001", 3) == 0
        assert split_dimension("000111", 3) == 2
        assert split_dimension("0001111", 3) == 0

    def test_virtual_root_does_not_split(self):
        with pytest.raises(InvalidLabelError):
            split_dimension(virtual_root(2), 2)


class TestBranchNodes:
    def test_between_leaf_and_root(self):
        # Siblings of every node on the path below the top.
        assert branch_nodes_between("001101", "001", 2) == [
            "0010",
            "00111",
            "001100",
        ]

    def test_requires_proper_ancestor(self):
        with pytest.raises(InvalidLabelError):
            branch_nodes_between("0011", "0010", 2)
        with pytest.raises(InvalidLabelError):
            branch_nodes_between("0011", "0011", 2)

    @given(labels_strategy(2, 10), st.data())
    def test_branch_nodes_tile_the_subtree(self, leaf, data):
        """leaf + its branch nodes partition the top's subtree."""
        if len(leaf) <= 4:
            return
        cut = data.draw(st.integers(min_value=3, max_value=len(leaf) - 1))
        top = leaf[:cut]
        branches = branch_nodes_between(leaf, top, 2)
        # Disjoint: no branch is a prefix of another or of the leaf.
        nodes = branches + [leaf]
        for a in nodes:
            for b in nodes:
                if a != b:
                    assert not b.startswith(a)
        # Complete: total measure of cells equals the top's cell.
        total = sum(2.0 ** -(len(node) - len(top)) for node in nodes)
        assert abs(total - 1.0) < 1e-12


class TestBits:
    def test_coordinate_bits_paper_example(self):
        # Section 5: 0.2 -> 001..., 0.4 -> 011...
        assert coordinate_bits(0.2, 3) == "001"
        assert coordinate_bits(0.4, 3) == "011"

    def test_coordinate_bits_powers_of_two(self):
        assert coordinate_bits(0.5, 4) == "1000"
        assert coordinate_bits(0.75, 4) == "1100"
        assert coordinate_bits(0.0, 4) == "0000"

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidPointError):
            coordinate_bits(1.0, 4)
        with pytest.raises(InvalidPointError):
            coordinate_bits(-0.1, 4)

    def test_interleave_dimension_order(self):
        # dim-0 bit first, then dim-1, alternating.
        assert interleave((0.5, 0.0), 4) == "1000"
        assert interleave((0.0, 0.5), 4) == "0100"

    def test_interleave_length(self):
        assert len(interleave((0.3, 0.7), 9)) == 9

    def test_candidate_string_prefixes_nest(self):
        cand = candidate_string((0.3, 0.9), 20)
        assert cand.startswith(root_label(2))
        assert len(cand) == 3 + 20

    @given(st.floats(min_value=0.0, max_value=1.0, exclude_max=True,
                     allow_nan=False))
    def test_bits_reconstruct_coordinate(self, value):
        """Reading 40 bits back reconstructs the coordinate to 2^-40."""
        bits = coordinate_bits(value, 40)
        approx = sum(
            2.0 ** -(position + 1)
            for position, bit in enumerate(bits)
            if bit == "1"
        )
        assert abs(approx - value) < 2.0**-40


class TestCommonPrefix:
    def test_basic(self):
        assert common_prefix("0010", "0011") == "001"
        assert common_prefix("001", "001") == "001"
        assert common_prefix("1", "0") == ""

    @given(st.text(alphabet="01", max_size=16),
           st.text(alphabet="01", max_size=16))
    def test_is_prefix_of_both(self, a, b):
        prefix = common_prefix(a, b)
        assert a.startswith(prefix)
        assert b.startswith(prefix)
        longer = len(prefix)
        if longer < min(len(a), len(b)):
            assert a[longer] != b[longer]
