"""Tests for the Pastry overlay."""

import pytest

from repro.common.errors import DhtKeyError, ReproError
from repro.dht.hashing import key_digest
from repro.dht.pastry import (
    N_DIGITS,
    PastryDht,
    digits_of,
    numeric_distance,
    shared_prefix_length,
)


class TestDigits:
    def test_digit_count_and_range(self):
        digits = digits_of(key_digest("x"))
        assert len(digits) == N_DIGITS
        assert all(0 <= digit < 16 for digit in digits)

    def test_roundtrip(self):
        ident = key_digest("roundtrip")
        rebuilt = 0
        for digit in digits_of(ident):
            rebuilt = (rebuilt << 4) | digit
        assert rebuilt == ident

    def test_shared_prefix(self):
        assert shared_prefix_length((1, 2, 3), (1, 2, 4)) == 2
        assert shared_prefix_length((1,), (2,)) == 0
        assert shared_prefix_length((1, 2), (1, 2)) == 2


class TestRouting:
    def test_lookup_agrees_with_numeric_oracle(self):
        dht = PastryDht.build(24)
        for index in range(60):
            key = f"key-{index}"
            assert dht.lookup(key) == dht.peer_of(key)

    def test_hops_bounded_by_digits(self):
        dht = PastryDht.build(48)
        dht.stats.reset()
        for index in range(40):
            dht.lookup(f"key-{index}")
        assert dht.stats.hops / 40 < N_DIGITS

    def test_put_get_remove(self):
        dht = PastryDht.build(12)
        dht.put("k", "v", records_moved=2)
        assert dht.get("k") == "v"
        assert dht.stats.records_moved == 2
        assert dht.remove("k") == "v"
        with pytest.raises(DhtKeyError):
            dht.remove("k")

    def test_value_lands_on_closest_node(self):
        dht = PastryDht.build(16)
        dht.put("payload", 99)
        owner = dht.node(dht.peer_of("payload"))
        assert owner.store.get("payload") == 99

    def test_build_rejects_zero(self):
        with pytest.raises(ReproError):
            PastryDht.build(0)

    def test_single_node(self):
        dht = PastryDht.build(1)
        dht.put("k", 1)
        assert dht.get("k") == 1


class TestMembership:
    def test_join_takes_over_keys(self):
        dht = PastryDht.build(8)
        for index in range(100):
            dht.put(f"key-{index}", index)
        dht.join("pastry-late")
        late = dht.node("pastry-late")
        for key, _ in late.store.items():
            assert dht.peer_of(key) == "pastry-late"
        assert sum(1 for _ in dht.items()) == 100
        for index in range(0, 100, 9):
            assert dht.get(f"key-{index}") == index

    def test_duplicate_join_rejected(self):
        dht = PastryDht.build(4)
        with pytest.raises(ReproError):
            dht.join("pastry-0000")

    def test_fail_forgets_contact(self):
        dht = PastryDht.build(12)
        victim = dht.peers()[4]
        dht.fail(victim)
        for name in dht.peers():
            node = dht.node(name)
            assert all(pair[1] != victim for pair in node.leaf_set)
        # Routing still works around the hole.
        for index in range(30):
            key = f"key-{index}"
            assert dht.lookup(key) == dht.peer_of(key)


class TestLeafSetInvariant:
    def test_leaf_sets_hold_numerically_closest(self):
        dht = PastryDht.build(20)
        idents = sorted(
            (dht.node(name).ident, name) for name in dht.peers()
        )
        for name in dht.peers():
            node = dht.node(name)
            others = [pair for pair in idents if pair[1] != name]
            closest = sorted(
                others,
                key=lambda pair: numeric_distance(pair[0], node.ident),
            )[: len(node.leaf_set)]
            assert set(node.leaf_set) == set(closest)
