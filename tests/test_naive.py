"""Tests for the naive identity-mapping baseline (ablation A1)."""

import random

import pytest

from repro.common.config import IndexConfig
from repro.common.geometry import Region
from repro.baselines.naive import NaiveTreeIndex
from repro.core.index import MLightIndex
from repro.dht.localhash import LocalDht
from tests.conftest import brute_force_range


def small_config():
    return IndexConfig(
        dims=2, max_depth=14, split_threshold=6, merge_threshold=3
    )


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(3))
    def test_range_queries_match_brute_force(self, seed):
        rng = random.Random(seed)
        index = NaiveTreeIndex(LocalDht(16), small_config())
        points = [(rng.random(), rng.random()) for _ in range(200)]
        for point in points:
            index.insert(point)
        for _ in range(8):
            lows = (rng.random() * 0.7, rng.random() * 0.7)
            highs = (
                lows[0] + rng.random() * 0.3, lows[1] + rng.random() * 0.3
            )
            query = Region(lows, highs)
            result = index.range_query(query)
            assert sorted(r.key for r in result.records) == (
                brute_force_range(points, query)
            )

    def test_delete(self):
        index = NaiveTreeIndex(LocalDht(16), small_config())
        index.insert((0.5, 0.5), "v")
        assert index.delete((0.5, 0.5), "v")
        assert not index.delete((0.5, 0.5), "v")


class TestWhyNamingMatters:
    """The ablation's point, as assertions."""

    def test_naive_splits_move_every_record(self):
        rng = random.Random(1)
        points = [(rng.random(), rng.random()) for _ in range(300)]
        config = small_config()
        naive = NaiveTreeIndex(LocalDht(16), config)
        mlight = MLightIndex(LocalDht(16), config)
        for point in points:
            naive.insert(point)
            mlight.insert(point)
        assert (
            naive.dht.stats.records_moved > mlight.dht.stats.records_moved
        )

    def test_naive_lookups_linear_in_depth(self):
        rng = random.Random(2)
        points = [(rng.random(), rng.random()) for _ in range(300)]
        config = small_config()
        naive = NaiveTreeIndex(LocalDht(16), config)
        mlight = MLightIndex(LocalDht(16), config)
        for point in points:
            naive.insert(point)
            mlight.insert(point)
        naive_probes = sum(
            naive.lookup(point)[1] for point in points[:50]
        )
        mlight_probes = sum(
            mlight.lookup(point).lookups for point in points[:50]
        )
        assert naive_probes > mlight_probes
