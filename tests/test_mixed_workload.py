"""Tests for the E11 mixed insert/delete experiment."""

import pytest

from repro.common.config import IndexConfig
from repro.datasets.northeast import northeast_surrogate
from repro.experiments.mixed_workload import render, run_mixed_workload


@pytest.fixture(scope="module")
def samples():
    config = IndexConfig(
        dims=2, max_depth=20, split_threshold=20,
        merge_threshold=10, expected_load=14,
    )
    points = northeast_surrogate(2000, seed=31)
    return run_mixed_workload(points, config, delete_fraction=0.4)


class TestMixedWorkload:
    def test_all_schemes_present(self, samples):
        assert [s.scheme for s in samples] == ["mlight", "pht", "dst"]

    def test_same_trace_for_all(self, samples):
        inserts = {s.inserts for s in samples}
        deletes = {s.deletes for s in samples}
        assert len(inserts) == 1 and len(deletes) == 1
        leftovers = {s.final_records for s in samples}
        assert len(leftovers) == 1  # identical surviving record sets
        sample = samples[0]
        assert sample.final_records == sample.inserts - sample.deletes

    def test_mlight_cheapest_with_deletes(self, samples):
        by_name = {s.scheme: s for s in samples}
        assert by_name["mlight"].lookups < by_name["pht"].lookups
        assert (
            by_name["mlight"].records_moved
            < by_name["pht"].records_moved
        )
        assert by_name["dst"].lookups > by_name["pht"].lookups

    def test_render(self, samples):
        text = render(samples)
        assert "deletes" in text and "mlight" in text


class TestPackageMain:
    def test_usage_banner(self, capsys):
        from repro.__main__ import main

        assert main() == 0
        out = capsys.readouterr().out
        assert "run_all" in out and "quickstart" in out
