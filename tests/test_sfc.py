"""Tests for the z-order space-filling curve."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import InvalidPointError
from repro.common.geometry import region_of_bits
from repro.baselines.sfc import z_decode, z_encode, z_prefix
from tests.conftest import points_strategy


class TestPrefix:
    def test_prefix_matches_interleaving(self):
        # x = 0.5 -> '1...', y = 0.0 -> '0...'
        assert z_prefix((0.5, 0.0), 4) == "1000"

    def test_prefix_cell_contains_point(self):
        point = (0.3, 0.7)
        for depth in range(0, 16):
            prefix = z_prefix(point, depth)
            assert region_of_bits(prefix, 2).contains_point(point)

    @given(points_strategy(2), st.integers(min_value=1, max_value=20))
    @settings(max_examples=60)
    def test_prefixes_nest(self, point, depth):
        longer = z_prefix(point, depth)
        shorter = z_prefix(point, depth - 1)
        assert longer.startswith(shorter)


class TestEncodeDecode:
    @given(points_strategy(2))
    @settings(max_examples=80)
    def test_roundtrip_2d(self, point):
        bits = 12
        code = z_encode(point, bits)
        low_corner = z_decode(code, 2, bits)
        # The decoded low corner is within one cell of the original.
        for original, decoded in zip(point, low_corner):
            assert decoded <= original < decoded + 2.0**-bits + 1e-12

    @given(points_strategy(3))
    @settings(max_examples=40)
    def test_roundtrip_3d(self, point):
        bits = 8
        code = z_encode(point, bits)
        low_corner = z_decode(code, 3, bits)
        for original, decoded in zip(point, low_corner):
            assert decoded <= original < decoded + 2.0**-bits + 1e-12

    def test_curve_order_is_locality_ish(self):
        """Adjacent codes decode to nearby cells (z-order property)."""
        bits = 4
        a = z_decode(5, 2, bits)
        b = z_decode(6, 2, bits)
        assert max(abs(x - y) for x, y in zip(a, b)) <= 0.5

    def test_decode_range_check(self):
        with pytest.raises(InvalidPointError):
            z_decode(-1, 2, 4)
        with pytest.raises(InvalidPointError):
            z_decode(1 << 8, 2, 4)

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_encode_decode_identity_on_grid(self, code):
        """decode -> encode is the identity on exact cell corners."""
        bits = 6
        corner = z_decode(code, 2, bits)
        assert z_encode(corner, bits) == code
