"""Tests for range aggregation."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import IndexConfig
from repro.common.geometry import Region
from repro.core.aggregate import (
    Aggregate,
    AggregateQueryEngine,
    count_in,
    sum_in,
)
from repro.core.index import MLightIndex
from repro.dht.localhash import LocalDht


def make_index(**overrides):
    defaults = dict(
        dims=2, max_depth=14, split_threshold=8, merge_threshold=4
    )
    defaults.update(overrides)
    return MLightIndex(LocalDht(16), IndexConfig(**defaults))


class TestAggregateAlgebra:
    def test_of_values(self):
        aggregate = Aggregate.of_values([1.0, 2.0, 3.0])
        assert aggregate.count == 3
        assert aggregate.total == 6.0
        assert aggregate.minimum == 1.0
        assert aggregate.maximum == 3.0
        assert aggregate.mean == 2.0

    def test_empty(self):
        aggregate = Aggregate.of_values([])
        assert aggregate.count == 0
        assert math.isnan(aggregate.mean)

    @given(
        st.lists(st.floats(-100, 100, allow_nan=False), max_size=20),
        st.lists(st.floats(-100, 100, allow_nan=False), max_size=20),
    )
    def test_combine_equals_concatenation(self, left, right):
        combined = Aggregate.of_values(left).combine(
            Aggregate.of_values(right)
        )
        direct = Aggregate.of_values(left + right)
        assert combined.count == direct.count
        assert combined.total == pytest.approx(direct.total)
        assert combined.minimum == direct.minimum
        assert combined.maximum == direct.maximum

    @given(
        st.lists(st.floats(-10, 10, allow_nan=False), max_size=8),
        st.lists(st.floats(-10, 10, allow_nan=False), max_size=8),
    )
    def test_combine_commutative(self, left, right):
        a = Aggregate.of_values(left)
        b = Aggregate.of_values(right)
        assert a.combine(b) == b.combine(a)


class TestAggregateQueries:
    @pytest.fixture()
    def populated(self):
        rng = random.Random(0)
        index = make_index()
        points = []
        for position in range(400):
            point = (rng.random(), rng.random())
            points.append((point, float(position % 10)))
            index.insert(point, value=float(position % 10))
        return index, points

    def test_count_matches_materialised(self, populated):
        index, points = populated
        query = Region((0.2, 0.3), (0.6, 0.7))
        counted = count_in(index, query)
        expected = sum(
            1 for point, _ in points
            if query.contains_point_closed(point)
        )
        assert counted.aggregate.count == expected
        # Same traversal -> same costs as the materialising query.
        materialised = index.range_query(query)
        assert counted.lookups == materialised.lookups
        assert counted.rounds == materialised.rounds
        assert counted.buckets_visited == len(
            materialised.visited_leaves
        )

    def test_sum_min_max_mean(self, populated):
        index, points = populated
        query = Region((0.1, 0.1), (0.9, 0.9))
        result = sum_in(index, query)
        values = [
            value for point, value in points
            if query.contains_point_closed(point)
        ]
        assert result.aggregate.total == pytest.approx(sum(values))
        assert result.aggregate.minimum == min(values)
        assert result.aggregate.maximum == max(values)
        assert result.aggregate.mean == pytest.approx(
            sum(values) / len(values)
        )

    def test_custom_value_function(self, populated):
        index, points = populated
        query = Region((0.0, 0.0), (1.0, 1.0))
        doubled = sum_in(
            index, query, value_of=lambda record: 2.0 * record.value
        )
        plain = sum_in(index, query)
        assert doubled.aggregate.total == pytest.approx(
            2.0 * plain.aggregate.total
        )

    def test_non_numeric_values_count_as_one(self):
        index = make_index()
        index.insert((0.2, 0.2), "a string")
        index.insert((0.3, 0.3), None)
        result = sum_in(index, Region((0.0, 0.0), (0.5, 0.5)))
        assert result.aggregate.total == 2.0  # 1.0 per record

    def test_empty_region(self, populated):
        index, _ = populated
        result = count_in(
            index, Region((0.95, 0.95), (0.9500001, 0.9500001))
        )
        assert result.aggregate.count >= 0  # may be 0; must not crash

    def test_lookahead_variant(self, populated):
        index, points = populated
        query = Region((0.2, 0.2), (0.8, 0.8))
        basic = count_in(index, query)
        parallel = count_in(index, query, lookahead=4)
        assert basic.aggregate.count == parallel.aggregate.count
        assert parallel.rounds <= basic.rounds

    def test_engine_direct(self, populated):
        index, points = populated
        engine = AggregateQueryEngine(index.dht, 2, 14)
        result = engine.query(Region((0.0, 0.0), (1.0, 1.0)))
        assert result.aggregate.count == len(points)
