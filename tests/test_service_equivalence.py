"""Sim-vs-service runtime equivalence.

The over-DHT contract says the substrate is invisible above the
:class:`~repro.dht.api.Dht` facade: the same workload must produce the
same query answers and the same index-level cost meters whether the
peers are simulated in one thread or run as asyncio actors behind the
framed wire protocol.  ``hops`` is the one excluded counter — it
meters overlay routing, which only the routed simulated protocols
perform (it is 0 on LocalDht too); wall-clock measures live on
``NetworkStats``, outside ``DhtStats`` entirely.
"""

from __future__ import annotations

import pytest

from repro.common.config import IndexConfig
from repro.core.index import MLightIndex
from repro.datasets.synthetic import uniform_points
from repro.runtime import RuntimeConfig, create_dht
from repro.workloads.traces import request_trace, run_operation

CONFIG = IndexConfig(dims=2, split_threshold=20, merge_threshold=10)
POINTS = uniform_points(600, seed=3)
TRACE = request_trace(
    POINTS, 150, insert_fraction=0.2, lookup_fraction=0.5,
    range_fraction=0.3, span=0.002, seed=7,
)


def run_workload(runtime: RuntimeConfig):
    """Load the index, replay the trace, return (answers, stats)."""
    dht = create_dht(runtime)
    try:
        index = MLightIndex(dht, CONFIG)
        index.insert_many(POINTS)
        answers = []
        for operation in TRACE:
            result = run_operation(index, operation)
            if operation.kind == "lookup":
                answers.append(
                    ("lookup", sorted(r.key for r in result.bucket.records))
                )
            elif operation.kind == "range":
                answers.append(
                    ("range", sorted(r.key for r in result.records))
                )
        return answers, dht.stats.snapshot()
    finally:
        close = getattr(dht, "close", None)
        if close is not None:
            close()


def comparable(snapshot: dict) -> dict:
    """DhtStats keyset minus the overlay-routing counter."""
    return {key: value for key, value in snapshot.items() if key != "hops"}


@pytest.fixture(scope="module")
def asyncio_run():
    """One asyncio-runtime replay shared by the per-overlay tests."""
    return run_workload(RuntimeConfig(kind="asyncio", n_peers=8))


class TestSimVsAsyncio:
    @pytest.mark.parametrize("overlay", ["chord", "kademlia", "pastry"])
    def test_all_overlays_match_the_service_runtime(
        self, overlay, asyncio_run
    ):
        sim_answers, sim_stats = run_workload(
            RuntimeConfig(kind="sim", overlay=overlay, n_peers=8)
        )
        svc_answers, svc_stats = asyncio_run
        assert sim_answers == svc_answers
        assert comparable(sim_stats) == comparable(svc_stats)

    def test_local_oracle_matches_the_service_runtime(self, asyncio_run):
        sim_answers, sim_stats = run_workload(
            RuntimeConfig(kind="sim", overlay="local", n_peers=8)
        )
        svc_answers, svc_stats = asyncio_run
        assert sim_answers == svc_answers
        assert comparable(sim_stats) == comparable(svc_stats)
        # The local oracle performs no overlay routing either, so here
        # even the full keyset (hops included) must agree.
        assert sim_stats == svc_stats

    def test_lookup_and_record_counts_are_nonzero(self, asyncio_run):
        """Guard against vacuous equality: the trace must actually
        exercise the meters being compared."""
        _, stats = asyncio_run
        assert stats["lookups"] > 0
        assert stats["gets"] > 0
        assert stats["puts"] > 0
        assert stats["records_moved"] > 0
        assert stats["batch_rounds"] > 0


class TestTcpTransport:
    def test_tcp_matches_asyncio_bit_for_bit(self, asyncio_run):
        """The socket transport carries the same frames as the inbox
        transport — answers and the full meter keyset agree."""
        tcp_answers, tcp_stats = run_workload(
            RuntimeConfig(kind="tcp", n_peers=4)
        )
        svc_answers, svc_stats = asyncio_run
        assert tcp_answers == svc_answers
        assert tcp_stats == svc_stats


class TestExecutionPlanes:
    @pytest.mark.parametrize("execution", ["batched", "sequential"])
    def test_both_planes_run_on_the_service_runtime(self, execution):
        config = IndexConfig(
            dims=2, split_threshold=20, merge_threshold=10,
            execution=execution,
        )
        with create_dht(kind="asyncio", n_peers=4) as dht:
            index = MLightIndex(dht, config)
            index.insert_many(POINTS[:200])
            result = index.range_query(((0.1, 0.1), (0.6, 0.6)))
        expected = sorted(
            p for p in POINTS[:200]
            if 0.1 <= p[0] <= 0.6 and 0.1 <= p[1] <= 0.6
        )
        assert sorted(r.key for r in result.records) == expected
