"""Tests for the self-checking report generator."""

import pytest

from repro.common.config import IndexConfig
from repro.datasets.northeast import northeast_surrogate
from repro.experiments import fig5, fig7
from repro.experiments.report import (
    check_fig5,
    check_fig7,
    generate_report,
    main,
)


@pytest.fixture(scope="module")
def report_text():
    # The paper's D=28 matters: DST's replication factor scales with
    # the virtual depth, so shallower trees understate its costs.
    config = IndexConfig(
        dims=2, max_depth=28, split_threshold=25,
        merge_threshold=12, expected_load=18,
    )
    points = northeast_surrogate(2500, seed=21)
    return generate_report(points, config, queries_per_span=3)


class TestGenerateReport:
    def test_contains_all_sections(self, report_text):
        for token in ("Fig. 5a/5b", "Fig. 6a/6b", "Fig. 7a/7b", "Summary"):
            assert token in report_text

    def test_all_claims_reproduced_at_small_scale(self, report_text):
        assert "NOT reproduced" not in report_text
        assert "**reproduced**" in report_text

    def test_summary_counts(self, report_text):
        summary = [
            line for line in report_text.splitlines()
            if line.startswith("## Summary")
        ][0]
        passed, total = summary.split(":")[1].split()[0].split("/")
        assert passed == total


class TestChecksDetectFailures:
    """The verdict functions must actually be able to fail."""

    def test_fig5_detects_inversion(self):
        series = [
            fig5.MaintenanceSeries("mlight", (10,), (500,), (100,)),
            fig5.MaintenanceSeries("pht", (10,), (100,), (100,)),
            fig5.MaintenanceSeries("dst", (10,), (100,), (100,)),
        ]
        checks = dict(check_fig5(series))
        assert not checks["m-LIGHT spends fewer DHT-lookups than PHT"]

    def test_fig7_detects_latency_disorder(self):
        def mk(variant, latency):
            return fig7.RangeQuerySeries(
                variant, (0.1,), (100.0,), (latency,)
            )

        series = [
            mk("mlight-basic", 5.0),
            mk("mlight-parallel-2", 9.0),  # worse than basic: wrong
            mk("mlight-parallel-4", 4.0),
            mk("pht", 12.0),
            mk("dst", 3.0),
        ]
        checks = dict(check_fig7(series))
        assert not checks[
            "latency ordering parallel-4 <= parallel-2 <= basic <= PHT"
        ]


class TestCli:
    def test_writes_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        code = main(
            ["--size", "800", "--queries", "2", "-o", str(output)]
        )
        assert code == 0
        text = output.read_text()
        assert "# m-LIGHT reproduction report" in text
