"""Every example script must run clean end-to-end.

The store-aware examples (quickstart, spatial POI search) run once per
record-store backend via the ``REPRO_STORE`` environment variable and
must print the same answers regardless of backend.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

STORE_BACKENDS = ("list", "columnar", "numpy")


def run_example(name: str, *args: str, store: str | None = None) -> str:
    env = dict(os.environ)
    if store is not None:
        env["REPRO_STORE"] = store
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    @pytest.mark.parametrize("store", STORE_BACKENDS)
    def test_quickstart(self, store):
        out = run_example("quickstart.py", store=store)
        assert "Song A" in out
        assert "Song C" in out
        assert "Song E" not in out.split("matched:")[1].split("parallel")[0]

    @pytest.mark.parametrize("store", STORE_BACKENDS)
    def test_spatial_poi_search(self, store):
        out = run_example("spatial_poi_search.py", "3000", store=store)
        assert "[threshold]" in out and "[data-aware]" in out
        assert "downtown NYC" in out
        # The Atlantic rectangle is empty in the surrogate.
        for line in out.splitlines():
            if "Atlantic" in line:
                assert line.split()[3] == "0"

    def test_quickstart_answers_identical_across_backends(self):
        outputs = {
            store: run_example("quickstart.py", store=store)
            for store in STORE_BACKENDS
        }
        assert len(set(outputs.values())) == 1, outputs

    def test_multi_attribute_search(self):
        out = run_example("multi_attribute_search.py")
        assert "rated>4 published 2007-2008" in out
        assert "dance hits" in out

    def test_nearest_neighbors(self):
        out = run_example("nearest_neighbors.py", "5000")
        assert "5 nearest to the Manhattan pin" in out
        assert out.count("distance") >= 15

    def test_churn_resilience(self):
        out = run_example("churn_resilience.py")
        assert "crashes" in out
        assert "replica copies repaired" in out
        assert "survival 100.0%" in out
        assert "identical across churn" in out

    def test_distributed_deployment(self):
        out = run_example("distributed_deployment.py")
        assert "identical answers and identical metered costs" in out
        assert out.count("DHT-lookups") >= 3

    def test_service_plane(self):
        out = run_example("service_plane.py")
        assert "identical across runtimes" in out
        assert "achieved QPS" in out
        assert "p99 latency (ms)" in out
