"""Every example script must run clean end-to-end."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Song A" in out
        assert "Song C" in out
        assert "Song E" not in out.split("matched:")[1].split("parallel")[0]

    def test_spatial_poi_search(self):
        out = run_example("spatial_poi_search.py", "3000")
        assert "[threshold]" in out and "[data-aware]" in out
        assert "downtown NYC" in out
        # The Atlantic rectangle is empty in the surrogate.
        for line in out.splitlines():
            if "Atlantic" in line:
                assert line.split()[3] == "0"

    def test_multi_attribute_search(self):
        out = run_example("multi_attribute_search.py")
        assert "rated>4 published 2007-2008" in out
        assert "dance hits" in out

    def test_nearest_neighbors(self):
        out = run_example("nearest_neighbors.py", "5000")
        assert "5 nearest to the Manhattan pin" in out
        assert out.count("distance") >= 15

    def test_churn_resilience(self):
        out = run_example("churn_resilience.py")
        assert "crashes" in out
        assert "replica copies repaired" in out
        assert "survival 100.0%" in out
        assert "identical across churn" in out

    def test_distributed_deployment(self):
        out = run_example("distributed_deployment.py")
        assert "identical answers and identical metered costs" in out
        assert out.count("DHT-lookups") >= 3

    def test_service_plane(self):
        out = run_example("service_plane.py")
        assert "identical across runtimes" in out
        assert "achieved QPS" in out
        assert "p99 latency (ms)" in out
