"""Churn-driver tests: weight validation, crash paths, replication.

``run_churn`` is substrate-generic — any overlay exposing ``join``/
``leave``/``fail`` — and repairs replicas between events when the
overlay maintains them.  The crash paths (``fail_weight > 0``) are
exercised on all three routed overlays, and the replication regression
pins the key guarantee: a replicated Chord ring survives any single
peer crash with no data loss.
"""

import pytest

from repro.common.errors import ReproError
from repro.dht.chord import ChordDht
from repro.dht.churn import generate_schedule, run_churn
from repro.dht.kademlia import KademliaDht
from repro.dht.pastry import PastryDht

OVERLAYS = {
    "chord": lambda: ChordDht.build(12),
    "kademlia": lambda: KademliaDht.build(12),
    "pastry": lambda: PastryDht.build(12),
}


def overlay(name):
    dht = OVERLAYS[name]()
    for index in range(60):
        dht.put(f"key-{index}", index)
    return dht


class TestScheduleValidation:
    @pytest.mark.parametrize("arm", ["join", "leave", "fail"])
    def test_negative_weight_rejected(self, arm):
        weights = {
            "join_weight": 1.0, "leave_weight": 1.0, "fail_weight": 1.0
        }
        weights[f"{arm}_weight"] = -0.5
        with pytest.raises(ReproError, match=f"{arm}_weight"):
            generate_schedule(10, **weights)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ReproError, match="positive"):
            generate_schedule(10, 0.0, 0.0, 0.0)

    def test_deterministic_by_seed(self):
        a = generate_schedule(40, 1.0, 1.0, 1.0, seed=5)
        assert a == generate_schedule(40, 1.0, 1.0, 1.0, seed=5)
        assert a != generate_schedule(40, 1.0, 1.0, 1.0, seed=6)
        assert set(a) == {"join", "leave", "fail"}

    def test_zero_arm_never_drawn(self):
        kinds = generate_schedule(40, 1.0, 1.0, 0.0, seed=1)
        assert "fail" not in kinds


class TestCrashChurnAcrossOverlays:
    """fail_weight > 0 runs — with data loss allowed, never errors."""

    @pytest.mark.parametrize("name", sorted(OVERLAYS))
    def test_mixed_churn_with_crashes(self, name):
        dht = overlay(name)
        report = run_churn(
            dht, 10, join_weight=1, leave_weight=1, fail_weight=1,
            seed=3,
        )
        assert len(report.events) > 0
        assert any(e.kind == "fail" for e in report.events)
        assert 0.0 <= report.survival_ratio <= 1.0
        # The overlay stays operational after crashes: new writes and
        # reads route correctly.
        dht.put("post-churn", "alive")
        assert dht.get("post-churn") == "alive"

    @pytest.mark.parametrize("name", sorted(OVERLAYS))
    def test_graceful_churn_loses_nothing(self, name):
        dht = overlay(name)
        report = run_churn(
            dht, 8, join_weight=1, leave_weight=1, fail_weight=0,
            seed=2,
        )
        assert report.survival_ratio == 1.0
        for index in range(60):
            assert dht.get(f"key-{index}") == index

    @pytest.mark.parametrize("name", sorted(OVERLAYS))
    def test_crash_only_churn(self, name):
        dht = overlay(name)
        report = run_churn(
            dht, 4, join_weight=0, leave_weight=0, fail_weight=1,
            seed=7, min_peers=4,
        )
        assert all(e.kind == "fail" for e in report.events)
        assert len(dht.peers()) >= 4


class TestReplicatedChurnSurvival:
    def test_single_crashes_lose_nothing_with_replication(self):
        """The repair-between-events regression: replication >= 2 must
        survive a whole burst of (one-at-a-time) crashes with every
        key intact, because the replica invariant is restored between
        consecutive crashes."""
        dht = ChordDht.build(12, replication=2)
        for index in range(60):
            dht.put(f"key-{index}", index)
        report = run_churn(
            dht, 8, join_weight=0.5, leave_weight=0.5, fail_weight=2,
            seed=9,
        )
        assert sum(1 for e in report.events if e.kind == "fail") >= 2
        assert report.repairs > 0  # repair really ran between events
        assert report.survival_ratio == 1.0
        for index in range(60):
            assert dht.get(f"key-{index}") == index

    def test_replication_three(self):
        dht = ChordDht.build(10, replication=3)
        for index in range(40):
            dht.put(f"key-{index}", index)
        report = run_churn(
            dht, 6, join_weight=0, leave_weight=0, fail_weight=1,
            seed=4,
        )
        assert any(e.kind == "fail" for e in report.events)
        assert report.survival_ratio == 1.0

    def test_unreplicated_crashes_may_lose_keys(self):
        """Contrast case: replication 1 has nothing to repair from."""
        dht = ChordDht.build(12, replication=1)
        for index in range(60):
            dht.put(f"key-{index}", index)
        report = run_churn(
            dht, 6, join_weight=0, leave_weight=0, fail_weight=1,
            seed=9,
        )
        assert report.repairs == 0
        assert report.survival_ratio < 1.0
