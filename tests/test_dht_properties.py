"""Property-based tests of the DHT substrates under random histories."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.chord import ChordDht
from repro.dht.kademlia import KademliaDht
from repro.dht.localhash import LocalDht
from repro.dht.pastry import PastryDht


@st.composite
def membership_history(draw):
    """A random sequence of joins/leaves starting from a small ring."""
    initial = draw(st.integers(min_value=2, max_value=6))
    steps = draw(
        st.lists(
            st.sampled_from(["join", "leave"]), min_size=0, max_size=6
        )
    )
    return initial, steps


class TestChordUnderRandomHistories:
    @given(membership_history(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_no_data_loss_and_correct_routing(self, history, seed):
        initial, steps = history
        rng = random.Random(seed)
        dht = ChordDht.build(initial)
        keys = {f"key-{index}": index for index in range(25)}
        for key, value in keys.items():
            dht.put(key, value)
        joined = 0
        for step in steps:
            if step == "join":
                dht.join(f"late-{joined}")
                joined += 1
            elif len(dht.peers()) > 2:
                dht.leave(rng.choice(dht.peers()))
            dht.stabilize_all(2)
        # Graceful histories lose nothing, ownership is consistent,
        # and every key remains routable.
        assert sum(1 for _ in dht.items()) == len(keys)
        for key, value in keys.items():
            assert dht.get(key) == value
            assert dht.lookup(key) == dht.peer_of(key)

    @given(st.integers(min_value=2, max_value=24))
    @settings(max_examples=10, deadline=None)
    def test_every_key_has_exactly_one_owner(self, n_peers):
        dht = ChordDht.build(n_peers)
        for index in range(30):
            dht.put(f"key-{index}", index)
        # Each key stored exactly once, on its oracle owner.
        placement: dict[str, list[str]] = {}
        for name in dht.peers():
            for key, _ in dht.node(name).store.items():
                placement.setdefault(key, []).append(name)
        for key, holders in placement.items():
            assert holders == [dht.peer_of(key)]


class TestOwnershipAgreement:
    """All substrates agree with their own oracle for arbitrary keys."""

    @given(st.lists(st.text(min_size=1, max_size=20), min_size=1,
                    max_size=20, unique=True))
    @settings(max_examples=15, deadline=None)
    def test_localdht(self, keys):
        dht = LocalDht(12)
        for key in keys:
            dht.put(key, key)
            assert dht.lookup(key) == dht.peer_of(key)
            assert dht.get(key) == key

    @pytest.mark.parametrize("factory", [
        lambda: ChordDht.build(10),
        lambda: KademliaDht.build(10),
        lambda: PastryDht.build(10),
    ], ids=["chord", "kademlia", "pastry"])
    def test_routed_overlays(self, factory, rng):
        dht = factory()
        for index in range(40):
            key = f"key-{rng.random()}"
            dht.put(key, index)
            assert dht.lookup(key) == dht.peer_of(key)
            assert dht.get(key) == index
