"""Tests for bulk loading (the static Theorem-6 construction)."""

import random

import pytest

from repro.common.config import IndexConfig
from repro.common.errors import ReproError
from repro.common.geometry import Region
from repro.core.bulkload import bulk_load, plan_bulk_tree
from repro.core.index import MLightIndex
from repro.core.records import Record
from repro.core.split import DataAwareSplit, ThresholdSplit
from repro.dht.localhash import LocalDht
from tests.conftest import brute_force_range


def small_config(**overrides):
    defaults = dict(
        dims=2, max_depth=16, split_threshold=8,
        merge_threshold=4, expected_load=6,
    )
    defaults.update(overrides)
    return IndexConfig(**defaults)


class TestPlan:
    def test_small_dataset_single_bucket(self):
        config = small_config()
        records = [Record((0.1, 0.1)), Record((0.9, 0.9))]
        leaves = plan_bulk_tree(
            records, config, ThresholdSplit(8, 4)
        )
        assert leaves == [("001", records)]

    def test_leaves_tile_the_space(self):
        rng = random.Random(0)
        config = small_config()
        records = [
            Record((rng.random(), rng.random())) for _ in range(300)
        ]
        leaves = plan_bulk_tree(records, config, ThresholdSplit(8, 4))
        labels = [label for label, _ in leaves]
        for a in labels:
            for b in labels:
                if a != b:
                    assert not b.startswith(a)
        total = sum(2.0 ** -(len(label) - 3) for label in labels)
        assert total == pytest.approx(1.0)
        assert sum(len(recs) for _, recs in leaves) == 300


class TestBulkLoad:
    def test_loaded_index_is_queryable_and_consistent(self):
        rng = random.Random(1)
        config = small_config()
        points = [(rng.random(), rng.random()) for _ in range(400)]
        dht = LocalDht(16)
        placed = bulk_load(dht, points, config)
        assert sum(load for _, load in placed) == 400
        index = MLightIndex(dht, config)
        index.check_invariants()
        query = Region((0.2, 0.2), (0.7, 0.7))
        got = sorted(r.key for r in index.range_query(query).records)
        assert got == brute_force_range(points, query)

    def test_incremental_ops_continue_after_bulk_load(self):
        rng = random.Random(2)
        config = small_config()
        points = [(rng.random(), rng.random()) for _ in range(200)]
        dht = LocalDht(16)
        bulk_load(dht, points, config)
        index = MLightIndex(dht, config)
        index.insert((0.123, 0.456), "new")
        assert index.delete(points[0])
        index.check_invariants()
        assert index.total_records() == 200

    def test_accepts_records_and_pairs(self):
        config = small_config()
        dht = LocalDht(8)
        bulk_load(
            dht,
            [Record((0.1, 0.1), "r"), ((0.2, 0.2), "p"), (0.3, 0.3)],
            config,
        )
        index = MLightIndex(dht, config)
        assert index.total_records() == 3

    def test_refuses_existing_tree(self):
        config = small_config()
        dht = LocalDht(8)
        MLightIndex(dht, config)  # bootstraps a root bucket
        with pytest.raises(ReproError):
            bulk_load(dht, [(0.1, 0.1)], config)


class TestStaticBeatsIncremental:
    """Ablation A4's claim, as a test: bulk loading costs less and the
    static data-aware tree balances at least as well."""

    def test_bulk_maintenance_floor(self):
        rng = random.Random(3)
        config = small_config()
        points = [(rng.random(), rng.random()) for _ in range(500)]

        bulk_dht = LocalDht(16)
        placed = bulk_load(bulk_dht, points, config)
        incr = MLightIndex(LocalDht(16), config)
        for point in points:
            incr.insert(point)

        assert bulk_dht.stats.lookups == len(placed)
        assert bulk_dht.stats.lookups < incr.dht.stats.lookups
        assert bulk_dht.stats.records_moved <= incr.dht.stats.records_moved

    def test_static_data_aware_variance(self):
        rng = random.Random(4)
        config = small_config()
        # Clustered data: the regime where incremental early splits
        # commit to bad partitions.
        points = []
        for _ in range(600):
            cx, cy = rng.choice([(0.2, 0.2), (0.8, 0.3), (0.5, 0.8)])
            points.append(
                (
                    min(0.999, max(0.0, rng.gauss(cx, 0.05))),
                    min(0.999, max(0.0, rng.gauss(cy, 0.05))),
                )
            )
        strategy = DataAwareSplit(config.expected_load)

        bulk_dht = LocalDht(16)
        bulk_load(bulk_dht, points, config, strategy)
        static_loads = [
            value.load for key, value in bulk_dht.items()
            if key.startswith("ml:")
        ]

        incr = MLightIndex.with_data_aware_splitting(LocalDht(16), config)
        for point in points:
            incr.insert(point)
        incremental_loads = [bucket.load for bucket in incr.buckets()]

        epsilon = config.expected_load
        static_cost = sum((x - epsilon) ** 2 for x in static_loads)
        incremental_cost = sum(
            (x - epsilon) ** 2 for x in incremental_loads
        )
        assert static_cost <= incremental_cost
