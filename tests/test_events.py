"""Tests for the discrete-event scheduler."""

import pytest

from repro.common.errors import ReproError
from repro.net.events import EventScheduler


class TestScheduling:
    def test_fires_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(3.0, lambda: fired.append("c"))
        sched.schedule(1.0, lambda: fired.append("a"))
        sched.schedule(2.0, lambda: fired.append("b"))
        sched.run_all()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_submission_order(self):
        sched = EventScheduler()
        fired = []
        for name in "abcde":
            sched.schedule(1.0, lambda n=name: fired.append(n))
        sched.run_all()
        assert fired == list("abcde")

    def test_run_until_stops_at_deadline(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        sched.schedule(5.0, lambda: fired.append(5))
        count = sched.run_until(2.0)
        assert count == 1
        assert fired == [1]
        assert sched.now == 2.0
        assert sched.pending() == 1

    def test_clock_advances_to_event_time(self):
        sched = EventScheduler()
        times = []
        sched.schedule(2.5, lambda: times.append(sched.now))
        sched.run_all()
        assert times == [2.5]

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ReproError):
            sched.schedule(-1.0, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sched = EventScheduler()
        fired = []

        def first():
            fired.append("first")
            sched.schedule(1.0, lambda: fired.append("second"))

        sched.schedule(1.0, first)
        sched.run_all()
        assert fired == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = EventScheduler()
        fired = []
        handle = sched.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sched.run_all()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sched = EventScheduler()
        handle = sched.schedule(1.0, lambda: None)
        sched.run_all()
        handle.cancel()  # must not raise


class TestPeriodic:
    def test_fires_repeatedly(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_every(1.0, lambda: fired.append(sched.now))
        sched.run_until(5.5)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_cancel_stops_the_chain(self):
        sched = EventScheduler()
        fired = []
        handle = sched.schedule_every(1.0, lambda: fired.append(1))
        sched.run_until(2.5)
        handle.cancel()
        sched.run_until(10.0)
        assert len(fired) == 2

    def test_jitter_applied(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_every(1.0, lambda: fired.append(sched.now),
                             jitter=lambda: 0.5)
        sched.run_until(5.0)
        assert fired == [1.5, 3.0, 4.5]

    def test_zero_period_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ReproError):
            sched.schedule_every(0.0, lambda: None)


class TestRunawayGuard:
    def test_event_storm_detected(self):
        sched = EventScheduler()

        def respawn():
            sched.schedule(0.0, respawn)

        sched.schedule(0.0, respawn)
        with pytest.raises(ReproError):
            sched.run_all(max_events=100)
