"""Tests for range-query processing (Section 6, Algorithms 2-3)."""

import random

import pytest
from repro.common.errors import InvalidRegionError
from repro.common.geometry import Region, region_of_label
from repro.common.labels import root_label
from repro.core.bucket import LeafBucket
from repro.core.keys import bucket_key
from repro.core.naming import naming_function
from repro.core.rangequery import RangeQueryEngine, compute_lca
from repro.core.records import Record
from repro.dht.localhash import LocalDht
from tests.conftest import brute_force_range, random_tree_leaves


def build_populated_tree(rng, dims, max_depth, n_points):
    """A random tree with random records placed in the right leaves."""
    leaves = random_tree_leaves(rng, dims, max_depth)
    regions = {leaf: region_of_label(leaf, dims) for leaf in leaves}
    dht = LocalDht(16)
    buckets = {
        leaf: LeafBucket(leaf, dims) for leaf in leaves
    }
    points = []
    for _ in range(n_points):
        point = tuple(rng.random() for _ in range(dims))
        points.append(point)
        for leaf, region in regions.items():
            if region.contains_point(point):
                buckets[leaf].add(Record(point))
                break
    for leaf, bucket in buckets.items():
        dht.put(bucket_key(naming_function(leaf, dims)), bucket)
    return dht, leaves, points


def random_query(rng, dims):
    lows = tuple(rng.random() * 0.8 for _ in range(dims))
    sides = tuple(rng.random() * 0.4 + 0.01 for _ in range(dims))
    highs = tuple(min(1.0, low + side) for low, side in zip(lows, sides))
    return Region(lows, highs)


class TestComputeLca:
    def test_whole_space_query(self):
        assert compute_lca(Region((0.0, 0.0), (1.0, 1.0)), 2, 20) == "001"

    def test_descends_into_quadrant(self):
        lca = compute_lca(Region((0.1, 0.1), (0.2, 0.2)), 2, 20)
        assert lca.startswith("0010")  # left half at least
        region = region_of_label(lca, 2)
        assert region.lows[0] <= 0.1 and region.highs[0] >= 0.2

    def test_straddling_query_stays_at_root(self):
        assert compute_lca(Region((0.4, 0.4), (0.6, 0.6)), 2, 20) == "001"

    def test_boundary_touching_query_not_resolved_by_left_cell(self):
        # Query ending exactly at 0.5 can match records at 0.5, which
        # live in the right half: the LCA must stay at the root.
        assert compute_lca(Region((0.2, 0.1), (0.5, 0.2)), 2, 20) == "001"

    def test_respects_max_depth(self):
        lca = compute_lca(Region((0.1, 0.1), (0.100001, 0.100001)), 2, 6)
        assert len(lca) - 3 <= 6


class TestCorrectness:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(3))
    def test_sound_and_complete(self, dims, seed):
        rng = random.Random(seed)
        dht, leaves, points = build_populated_tree(rng, dims, 10, 200)
        engine = RangeQueryEngine(dht, dims, 10)
        for _ in range(10):
            query = random_query(rng, dims)
            result = engine.query(query)
            assert sorted(r.key for r in result.records) == (
                brute_force_range(points, query)
            )

    @pytest.mark.parametrize("lookahead", [2, 4, 8])
    @pytest.mark.parametrize("seed", range(3))
    def test_parallel_variants_agree_with_basic(self, lookahead, seed):
        rng = random.Random(seed)
        dht, leaves, points = build_populated_tree(rng, 2, 10, 200)
        engine = RangeQueryEngine(dht, 2, 10)
        for _ in range(10):
            query = random_query(rng, 2)
            basic = engine.query(query)
            parallel = engine.query(query, lookahead=lookahead)
            assert sorted(r.key for r in basic.records) == (
                sorted(r.key for r in parallel.records)
            )

    def test_query_on_singleton_tree(self):
        dht = LocalDht(4)
        bucket = LeafBucket(root_label(2), 2)
        bucket.add(Record((0.3, 0.4), "a"))
        dht.put(bucket_key("00"), bucket)
        engine = RangeQueryEngine(dht, 2, 12)
        result = engine.query(Region((0.25, 0.3), (0.35, 0.5)))
        assert [r.value for r in result.records] == ["a"]
        assert result.lookups >= 1

    def test_degenerate_point_query(self):
        rng = random.Random(5)
        dht, leaves, points = build_populated_tree(rng, 2, 10, 100)
        engine = RangeQueryEngine(dht, 2, 10)
        target = points[0]
        query = Region(target, target)
        result = engine.query(query)
        assert target in [r.key for r in result.records]

    def test_rejects_bad_lookahead(self):
        dht = LocalDht(4)
        dht.put(bucket_key("00"), LeafBucket("001", 2))
        engine = RangeQueryEngine(dht, 2, 10)
        with pytest.raises(InvalidRegionError):
            engine.query(Region((0.0, 0.0), (0.1, 0.1)), lookahead=3)
        with pytest.raises(InvalidRegionError):
            engine.query(Region((0.0, 0.0), (0.1, 0.1)), lookahead=0)

    def test_rejects_dims_mismatch(self):
        dht = LocalDht(4)
        dht.put(bucket_key("00"), LeafBucket("001", 2))
        engine = RangeQueryEngine(dht, 2, 10)
        with pytest.raises(InvalidRegionError):
            engine.query(Region((0.0,), (0.1,)))


class TestEfficiency:
    @pytest.mark.parametrize("seed", range(4))
    def test_basic_never_visits_a_bucket_twice(self, seed):
        """The decomposition is disjoint (Section 6).

        For the whole-space query the LCA is the root, which always
        exists, so there are no fallbacks: every probe reaches a
        distinct data-carrying leaf and the query enumerates the whole
        tree with exactly one lookup per leaf.
        """
        rng = random.Random(seed)
        dht, leaves, points = build_populated_tree(rng, 2, 10, 300)
        engine = RangeQueryEngine(dht, 2, 10)
        result = engine.query(Region((0.0, 0.0), (1.0, 1.0)))
        assert result.lookups == len(result.visited_leaves) == len(leaves)
        assert len(result.records) == len(points)
        # Arbitrary queries may need corner-lookup fallbacks, but each
        # collected leaf is still collected exactly once.
        for _ in range(10):
            partial = engine.query(random_query(rng, 2))
            assert partial.lookups >= len(partial.visited_leaves)

    def test_lookahead_trades_bandwidth_for_latency(self):
        rng = random.Random(11)
        dht, leaves, points = build_populated_tree(rng, 2, 12, 2000)
        engine = RangeQueryEngine(dht, 2, 12)
        query = Region((0.05, 0.05), (0.85, 0.85))
        basic = engine.query(query)
        parallel = engine.query(query, lookahead=4)
        assert parallel.lookups >= basic.lookups
        assert parallel.rounds <= basic.rounds

    @pytest.mark.parametrize("seed", range(3))
    def test_rounds_bounded_by_tree_depth(self, seed):
        rng = random.Random(seed)
        dht, leaves, points = build_populated_tree(rng, 2, 10, 300)
        deepest = max(len(leaf) - 3 for leaf in leaves)
        engine = RangeQueryEngine(dht, 2, 10)
        for _ in range(10):
            result = engine.query(random_query(rng, 2))
            assert result.rounds <= deepest + 2

    def test_fallback_chain_extends_rounds(self):
        """A missing target's point-lookup fallback is a *sequential*
        probe chain; its full length must land in the latency measure,
        not just the wave that spawned it."""
        dht = LocalDht(4)
        bucket = LeafBucket(root_label(2), 2)
        bucket.add(Record((0.31, 0.41), "a"))
        dht.put(bucket_key("00"), bucket)
        engine = RangeQueryEngine(dht, 2, 12)
        # A tiny query deep below the lone root leaf: the LCA probe
        # misses, and everything after it is one fallback binary
        # search — so every single lookup was on the critical path.
        result = engine.query(Region((0.3, 0.4), (0.32, 0.42)))
        assert [r.value for r in result.records] == ["a"]
        assert result.rounds == result.lookups > 1

    @pytest.mark.parametrize("lookahead", [1, 4])
    @pytest.mark.parametrize("seed", range(3))
    def test_rounds_equal_issued_batches(self, lookahead, seed):
        """``rounds`` is derived from issuance: on the batched plane the
        engine opens exactly one builder round per issued batch, with
        fallback chain steps riding the same rounds as the frontier."""
        rng = random.Random(seed)
        dht, leaves, points = build_populated_tree(rng, 2, 10, 300)
        engine = RangeQueryEngine(dht, 2, 10, batched=True)
        for _ in range(5):
            result = engine.query(random_query(rng, 2), lookahead)
            assert result.rounds == result.batch_rounds > 0


class TestComputeLcaBoundaryAudit:
    """Satellite audit: ``compute_lca`` against a naive baseline.

    The suspect class was queries whose faces land exactly on cell
    boundaries — the mixed closed-query/half-open-cell semantics make
    the upper face the dangerous one (a record at ``q_high == c_high``
    lives in the *adjacent* cell unless the face is the global
    boundary).  The audit found no violation; these tests pin the
    behaviour to an exhaustively-searched baseline in dims 1-4 so a
    future regression cannot hide in the boundary arithmetic.
    """

    @staticmethod
    def naive_resolves(cell, query):
        """Point-level restatement of the resolution predicate: every
        point a closed query can match is owned by the half-open cell
        (closed at the global upper boundary)."""
        for c_low, q_low, q_high, c_high in zip(
            cell.lows, query.lows, query.highs, cell.highs
        ):
            if q_low < c_low:
                return False
            if q_high > c_high:
                return False
            if q_high == c_high and c_high != 1.0:
                # A matching record can sit exactly on this shared
                # face, and the face belongs to the neighbour.
                return False
        return True

    @classmethod
    def naive_lca(cls, query, dims, max_depth):
        """Exhaustive BFS for the deepest resolving label — no descent
        shortcuts, so a wrong early ``break`` in the production code
        cannot be reproduced here."""
        from repro.common.labels import children, label_depth

        best = root_label(dims)
        frontier = [best]
        while frontier:
            nxt = []
            for label in frontier:
                for child in children(label, dims):
                    if label_depth(child, dims) > max_depth:
                        continue
                    if cls.naive_resolves(
                        region_of_label(child, dims), query
                    ):
                        nxt.append(child)
            if not nxt:
                break
            # Resolving labels form a chain: siblings have disjoint
            # interiors, so at most one child can resolve.
            assert len(nxt) == 1, (query, nxt)
            best = nxt[0]
            frontier = nxt
        return best

    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_matches_naive_on_random_queries(self, dims):
        rng = random.Random(100 + dims)
        for _ in range(60):
            query = random_query(rng, dims)
            assert compute_lca(query, dims, 8) == self.naive_lca(
                query, dims, 8
            ), query

    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_matches_naive_on_binary_boundary_queries(self, dims):
        """Query faces on exact cell boundaries k/2^j — the class the
        audit targeted."""
        rng = random.Random(200 + dims)
        for _ in range(80):
            lows, highs = [], []
            for _ in range(dims):
                j = rng.randint(1, 4)
                a = rng.randint(0, 2**j - 1) / 2**j
                b = rng.randint(int(a * 2**j) + 1, 2**j) / 2**j
                lows.append(a)
                highs.append(b)
            query = Region(tuple(lows), tuple(highs))
            assert compute_lca(query, dims, 8) == self.naive_lca(
                query, dims, 8
            ), query

    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_lca_cell_owns_every_query_corner(self, dims):
        """Safety half of the contract, stated point-wise: both query
        corners (the extreme matchable records) are owned by the LCA
        cell under half-open ownership."""
        rng = random.Random(300 + dims)
        for _ in range(40):
            query = random_query(rng, dims)
            cell = region_of_label(
                compute_lca(query, dims, 10), dims
            )
            for corner in (query.lows, query.highs):
                for p, c_low, c_high in zip(
                    corner, cell.lows, cell.highs
                ):
                    assert c_low <= p
                    assert p < c_high or (c_high == 1.0 and p <= 1.0)
