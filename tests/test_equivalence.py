"""Cross-index equivalence: all three schemes answer identically, and
their cost ordering matches the paper's headline comparisons."""

import pytest

from repro.common.config import IndexConfig
from repro.baselines.dst import DstIndex
from repro.baselines.pht import PhtIndex
from repro.core.index import MLightIndex
from repro.datasets.northeast import northeast_surrogate
from repro.dht.localhash import LocalDht
from repro.workloads.queries import uniform_range_queries
from tests.conftest import brute_force_range


@pytest.fixture(scope="module")
def built_indexes():
    config = IndexConfig(
        dims=2, max_depth=16, split_threshold=20, merge_threshold=10
    )
    points = northeast_surrogate(3000, seed=99)
    indexes = {
        "mlight": MLightIndex(LocalDht(32), config),
        "pht": PhtIndex(LocalDht(32), config),
        "dst": DstIndex(LocalDht(32), config),
    }
    for index in indexes.values():
        for point in points:
            index.insert(point)
    return indexes, points


class TestSameAnswers:
    def test_range_queries_agree(self, built_indexes):
        indexes, points = built_indexes
        queries = uniform_range_queries(8, 0.05, seed=5)
        for query in queries:
            expected = brute_force_range(points, query)
            for name, index in indexes.items():
                got = sorted(
                    r.key for r in index.range_query(query).records
                )
                assert got == expected, f"{name} diverged on {query}"

    def test_record_counts_agree(self, built_indexes):
        indexes, points = built_indexes
        for name, index in indexes.items():
            assert index.total_records() == len(points), name


class TestPaperCostOrdering:
    """The qualitative claims of Section 7 as assertions."""

    def test_maintenance_lookups_mlight_cheapest(self, built_indexes):
        indexes, _ = built_indexes
        lookups = {
            name: index.dht.stats.lookups for name, index in indexes.items()
        }
        assert lookups["mlight"] < lookups["pht"] < lookups["dst"]

    def test_maintenance_movement_ordering(self, built_indexes):
        indexes, _ = built_indexes
        moved = {
            name: index.dht.stats.records_moved
            for name, index in indexes.items()
        }
        assert moved["mlight"] < moved["pht"] < moved["dst"]
        # "worse than the other two by an order of magnitude" — at this
        # reduced depth (D=16 vs the paper's 28) the replication factor
        # shrinks with the path length, so assert a conservative gap;
        # the full-depth gap is checked by the Fig. 5 benchmark.
        assert moved["dst"] > 2.5 * moved["pht"]

    def test_query_bandwidth_ordering(self, built_indexes):
        indexes, _ = built_indexes
        queries = uniform_range_queries(5, 0.1, seed=6)
        totals = {}
        for name, index in indexes.items():
            totals[name] = sum(
                index.range_query(query).lookups for query in queries
            )
        assert totals["mlight"] < totals["pht"] < totals["dst"]

    def test_parallel_latency_ordering(self, built_indexes):
        indexes, _ = built_indexes
        mlight = indexes["mlight"]
        queries = uniform_range_queries(6, 0.2, seed=7)
        basic = sum(mlight.range_query(q).rounds for q in queries)
        par2 = sum(
            mlight.range_query(q, lookahead=2).rounds for q in queries
        )
        par4 = sum(
            mlight.range_query(q, lookahead=4).rounds for q in queries
        )
        assert par4 <= par2 <= basic
