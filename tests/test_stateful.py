"""Model-based (stateful) testing of the indexes with hypothesis.

A RuleBasedStateMachine drives random interleavings of inserts,
deletes, lookups and range queries against an index while maintaining a
brute-force model; every query answer must match the model exactly, and
the m-LIGHT structural invariants must hold at checkpoints.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.common.config import IndexConfig
from repro.common.geometry import Region
from repro.core.index import MLightIndex
from repro.baselines.pht import PhtIndex
from repro.dht.localhash import LocalDht

COORD = st.floats(
    min_value=0.0, max_value=1.0, exclude_max=True,
    allow_nan=False, allow_infinity=False,
)
POINT = st.tuples(COORD, COORD)


def _small_config():
    return IndexConfig(
        dims=2, max_depth=12, split_threshold=5, merge_threshold=3
    )


class MLightMachine(RuleBasedStateMachine):
    """m-LIGHT vs a list-of-points model."""

    def __init__(self):
        super().__init__()
        self.index = MLightIndex(LocalDht(8), _small_config())
        self.model: list[tuple] = []
        self.steps = 0

    @rule(point=POINT)
    def insert(self, point):
        self.index.insert(point)
        self.model.append(point)
        self.steps += 1

    @rule(data=st.data())
    @precondition(lambda self: self.model)
    def delete_existing(self, data):
        point = data.draw(st.sampled_from(self.model))
        assert self.index.delete(point)
        self.model.remove(point)
        self.steps += 1

    @rule(point=POINT)
    def delete_probably_absent(self, point):
        present = point in self.model
        assert self.index.delete(point) == present
        if present:
            self.model.remove(point)

    @rule(data=st.data())
    @precondition(lambda self: self.model)
    def lookup_existing(self, data):
        point = data.draw(st.sampled_from(self.model))
        bucket = self.index.lookup(point).bucket
        assert bucket.covers(point)
        assert any(record.key == point for record in bucket.records)

    @rule(low=POINT, extent=st.tuples(
        st.floats(0.0, 0.5, allow_nan=False),
        st.floats(0.0, 0.5, allow_nan=False),
    ), lookahead=st.sampled_from([1, 2, 4]))
    def range_query(self, low, extent, lookahead):
        highs = tuple(
            min(1.0, value + span) for value, span in zip(low, extent)
        )
        query = Region(low, highs)
        got = sorted(
            record.key
            for record in self.index.range_query(
                query, lookahead=lookahead
            ).records
        )
        expected = sorted(
            point for point in self.model
            if query.contains_point_closed(point)
        )
        assert got == expected

    @invariant()
    def record_count_matches(self):
        assert self.index.total_records() == len(self.model)

    @invariant()
    def structure_is_sound(self):
        if self.steps % 7 == 0:  # full check is O(n^2); sample it
            self.index.check_invariants()


class PhtMachine(RuleBasedStateMachine):
    """PHT vs the same model (baseline deserves the same rigour)."""

    def __init__(self):
        super().__init__()
        self.index = PhtIndex(LocalDht(8), _small_config())
        self.model: list[tuple] = []

    @rule(point=POINT)
    def insert(self, point):
        self.index.insert(point)
        self.model.append(point)

    @rule(data=st.data())
    @precondition(lambda self: self.model)
    def delete_existing(self, data):
        point = data.draw(st.sampled_from(self.model))
        assert self.index.delete(point)
        self.model.remove(point)

    @rule(low=POINT, extent=st.tuples(
        st.floats(0.0, 0.5, allow_nan=False),
        st.floats(0.0, 0.5, allow_nan=False),
    ))
    def range_query(self, low, extent):
        highs = tuple(
            min(1.0, value + span) for value, span in zip(low, extent)
        )
        query = Region(low, highs)
        got = sorted(
            record.key
            for record in self.index.range_query(query).records
        )
        expected = sorted(
            point for point in self.model
            if query.contains_point_closed(point)
        )
        assert got == expected

    @invariant()
    def record_count_matches(self):
        assert self.index.total_records() == len(self.model)


TestMLightStateful = pytest.mark.filterwarnings("ignore")(
    MLightMachine.TestCase
)
TestMLightStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestPhtStateful = PhtMachine.TestCase
TestPhtStateful.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
