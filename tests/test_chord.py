"""Tests for the Chord overlay."""

import pytest

from repro.common.errors import DhtKeyError, ReproError
from repro.dht.chord import ChordDht, SUCCESSOR_LIST_LEN


def ring_oracle(dht: ChordDht, key: str) -> str:
    """Successor of hash(key) among live node identifiers."""
    return dht.peer_of(key)


class TestStaticRing:
    def test_build_and_route_agrees_with_oracle(self):
        dht = ChordDht.build(24)
        for index in range(60):
            key = f"key-{index}"
            assert dht.lookup(key) == ring_oracle(dht, key)

    def test_put_get_remove(self):
        dht = ChordDht.build(12)
        dht.put("k", "v", records_moved=2)
        assert dht.get("k") == "v"
        assert dht.stats.records_moved == 2
        assert dht.remove("k") == "v"
        with pytest.raises(DhtKeyError):
            dht.remove("k")

    def test_value_lands_on_oracle_owner(self):
        dht = ChordDht.build(16)
        dht.put("payload", 123)
        owner = dht.node(ring_oracle(dht, "payload"))
        assert owner.store.get("payload") == 123

    def test_routing_hops_logarithmic(self):
        dht = ChordDht.build(64)
        dht.stats.reset()
        lookups = 50
        for index in range(lookups):
            dht.lookup(f"key-{index}")
        # log2(64) = 6; allow generous slack but exclude O(N) walks.
        assert dht.stats.hops / lookups < 10

    def test_single_node_ring(self):
        dht = ChordDht.build(1)
        dht.put("k", 1)
        assert dht.get("k") == 1

    def test_build_rejects_zero(self):
        with pytest.raises(ReproError):
            ChordDht.build(0)

    def test_ring_pointers_consistent(self):
        dht = ChordDht.build(10)
        names = dht.peers()
        for name in names:
            node = dht.node(name)
            successor = node.successors[0]
            # our successor's predecessor is us
            assert dht.node(successor.name).predecessor.name == name
            assert len(node.successors) <= SUCCESSOR_LIST_LEN


class TestJoin:
    def test_join_takes_over_key_range(self):
        dht = ChordDht.build(8)
        for index in range(100):
            dht.put(f"key-{index}", index)
        dht.join("chord-newcomer")
        dht.stabilize_all(3)
        newcomer = dht.node("chord-newcomer")
        # Every key the newcomer holds is rightfully theirs.
        for key, _ in newcomer.store.items():
            assert ring_oracle(dht, key) == "chord-newcomer"
        # No data lost.
        assert sum(1 for _ in dht.items()) == 100
        # Lookups route correctly to the newcomer afterwards.
        for key, _ in list(newcomer.store.items())[:5]:
            assert dht.lookup(key) == "chord-newcomer"

    def test_duplicate_join_rejected(self):
        dht = ChordDht.build(4)
        with pytest.raises(ReproError):
            dht.join("chord-0000")

    def test_many_joins_converge(self):
        dht = ChordDht.build(4)
        for index in range(6):
            dht.join(f"late-{index}")
            dht.stabilize_all(2)
        for index in range(40):
            key = f"key-{index}"
            assert dht.lookup(key) == ring_oracle(dht, key)


class TestLeaveAndFail:
    def test_graceful_leave_hands_off_data(self):
        dht = ChordDht.build(10)
        for index in range(80):
            dht.put(f"key-{index}", index)
        victim = dht.peers()[3]
        dht.leave(victim)
        dht.stabilize_all(3)
        assert sum(1 for _ in dht.items()) == 80
        for index in range(0, 80, 7):
            assert dht.get(f"key-{index}") == index

    def test_crash_loses_only_victim_data(self):
        dht = ChordDht.build(10)
        for index in range(80):
            dht.put(f"key-{index}", index)
        victim = dht.peers()[3]
        lost = len(dht.node(victim).store)
        dht.fail(victim)
        dht.stabilize_all(4)
        assert sum(1 for _ in dht.items()) == 80 - lost
        # Ring still routes for every surviving key.
        for key, value in list(dht.items())[:10]:
            assert dht.get(key) == value

    def test_unknown_peer_rejected(self):
        dht = ChordDht.build(4)
        with pytest.raises(ReproError):
            dht.leave("ghost")
        with pytest.raises(ReproError):
            dht.fail("ghost")

    def test_successor_lists_recover_after_crash(self):
        dht = ChordDht.build(12)
        victim = dht.peers()[5]
        dht.fail(victim)
        dht.stabilize_all(4)
        for name in dht.peers():
            node = dht.node(name)
            successor = node.successors[0]
            assert successor.name != victim
            assert dht.network.is_registered(successor.name) or (
                successor.name == name
            )


class TestChurnSequence:
    def test_interleaved_membership_changes(self):
        from repro.dht.churn import run_churn

        dht = ChordDht.build(12)
        for index in range(60):
            dht.put(f"key-{index}", index)
        report = run_churn(
            dht, 10, join_weight=1, leave_weight=1, fail_weight=0, seed=3
        )
        # Graceful churn must not lose data.
        assert report.survival_ratio == 1.0
        assert len(report.events) > 0
        for index in range(60):
            assert dht.get(f"key-{index}") == index
